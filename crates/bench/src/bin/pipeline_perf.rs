//! Machine-readable perf record of the relevance hot path: scalar
//! (per-tuple, full-sort) vs vectorized (columnar kernels, chunked
//! data-parallel execution, top-k selection) vs partitioned (per-
//! partition passes + k-way merged top-k) rows/sec, pooled-vs-scoped
//! fan-out timings, isolated top-k-vs-full-sort timings, a **per-phase
//! breakdown** (distance / fit / normalize+combine / rank), the
//! **packed-vs-Option** representation A/B, the **slider-drag**
//! micro-bench (sorted-projection incremental path vs full recompute),
//! the **streaming-vs-materialized** A/B on a 2-predicate workload
//! (zero-materialization two-pass execution vs full-size frame
//! intermediates) with a streaming per-phase breakdown, and the
//! **observability overhead** A/B (untraced run vs traced run plus the
//! per-query registry recording the service layer performs).
//! Results are written to `BENCH_pipeline.json` so future PRs can track
//! the perf trajectory — and see where the time goes, not just one
//! end-to-end number.
//!
//! ```sh
//! cargo run --release -p visdb-bench --bin pipeline_perf            # full (n up to 1M)
//! cargo run --release -p visdb-bench --bin pipeline_perf -- --smoke # CI: tiny n, asserts only
//! ```
//!
//! In both modes the binary *asserts* that the streaming, materialized
//! **and partitioned** outputs are identical to the scalar reference —
//! and the incremental slider drag identical to a full recompute —
//! before it times anything; a regression that changes results fails
//! the run regardless of timing noise.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use visdb_bench::ramp_db;
use visdb_core::Session;
use visdb_distance::batch::{self, CompareKernel, NumericKernel};
use visdb_distance::frame::DistanceFrame;
use visdb_distance::DistanceResolver;
use visdb_obs::{Histogram, Registry};
use visdb_query::ast::{CompareOp, PredicateTarget};
use visdb_query::builder::QueryBuilder;
use visdb_query::connection::ConnectionRegistry;
use visdb_relevance::chunk;
use visdb_relevance::normalize::{fit_frame, fit_improved};
use visdb_relevance::pipeline::{
    run_pipeline, run_pipeline_opts, run_pipeline_partitioned, run_pipeline_scalar, DisplayPolicy,
    Materialization, PhaseTimings, PipelineOptions, PipelineOutput,
};
use visdb_storage::Database;
use visdb_types::Value;

/// Partition count for the timed partitioned runs (smoke identity
/// checks additionally cover 1, 2, 7 and 16).
const BENCH_PARTITIONS: usize = 8;

struct SizeResult {
    n: usize,
    scalar_rows_per_sec: f64,
    vectorized_rows_per_sec: f64,
    partitioned_rows_per_sec: f64,
    scoped_rows_per_sec: f64,
    speedup: f64,
    /// Partitioned vs unpartitioned vectorized (≈ 1.0 expected on one
    /// box: same work, different scheduling).
    partitioned_vs_vectorized: f64,
    /// Shared-pool fan-out vs per-walk scoped spawns (> 1.0 means the
    /// persistent pool wins).
    pooled_vs_scoped: f64,
    full_sort_ms: f64,
    topk_ms: f64,
    topk_k: usize,
    /// Per-phase breakdown of one vectorized run (milliseconds).
    phase_distance_ms: f64,
    phase_fit_ms: f64,
    phase_normalize_combine_ms: f64,
    phase_rank_ms: f64,
    /// Representation A/B on the same single-threaded workload:
    /// `Vec<Option<f64>>` three-pass baseline vs packed `DistanceFrame`
    /// fused pass, in rows/sec.
    option_repr_rows_per_sec: f64,
    packed_repr_rows_per_sec: f64,
    packed_vs_option: f64,
    /// Slider drag: sorted-projection incremental path vs full pipeline
    /// recompute for a contained bound modification.
    drag_incremental_us: f64,
    drag_full_us: f64,
    drag_speedup: f64,
    /// Streaming vs materialized A/B on the 2-predicate workload: the
    /// same query, same outputs (asserted bit-identical first), only the
    /// execution mode differs — materialized builds `#sp + 1` full-size
    /// frame intermediates, streaming recomputes distances in two fused
    /// chunk walks and assembles windows lazily at the displayed rows.
    materialized2_rows_per_sec: f64,
    streaming2_rows_per_sec: f64,
    streaming_vs_materialized: f64,
    /// Per-phase breakdown of one streaming run on the 2-predicate
    /// workload (milliseconds; distance = the stats recompute walks,
    /// normalize_combine = the fused combine pass + final
    /// normalization, rank includes the late window assembly).
    streaming_phase_distance_ms: f64,
    streaming_phase_fit_ms: f64,
    streaming_phase_normalize_combine_ms: f64,
    streaming_phase_rank_ms: f64,
    /// Observability overhead A/B: the same materialized run with
    /// tracing off (the plain-session default) vs tracing on **plus**
    /// the per-query registry recording a service performs (four phase
    /// histograms, an op counter, an op-latency histogram). The ratio
    /// is instrumented/baseline throughput; ~1.0 means telemetry is
    /// free at query granularity.
    obs_baseline_rows_per_sec: f64,
    obs_instrumented_rows_per_sec: f64,
    obs_overhead: f64,
}

/// Fold the per-phase wall times out of a traced run into an
/// accumulator (the trace replaces the old `timings: Option<&mut _>`
/// out-parameter the pipeline used to take).
fn accumulate_phases(acc: &mut PhaseTimings, out: &PipelineOutput) {
    let t = out.trace.as_deref().expect("trace requested but absent");
    acc.distance += t.phases.distance;
    acc.fit += t.phases.fit;
    acc.normalize_combine += t.phases.normalize_combine;
    acc.rank += t.phases.rank;
}

/// The pre-packed intermediate representation, reconstructed locally as
/// the A/B baseline: three passes over 16-byte `Option<f64>` elements
/// (distance fill, fit re-collect + selection, normalize + combine +
/// exact count) — exactly the pass structure the pipeline had before
/// packed frames. Returns a checksum so the optimizer keeps it honest.
fn option_repr_pipeline(xs: &[f64], t: f64, budget: usize) -> (usize, f64) {
    let n = xs.len();
    let kernel = NumericKernel::Compare(CompareKernel::Greater, Some(t));
    let mut dist: Vec<Option<f64>> = vec![None; n];
    batch::run(xs, None, kernel, &mut dist);
    let params = fit_improved(&dist, 1.0, budget);
    let mut exact = 0usize;
    let mut sum = 0.0f64;
    let mut combined: Vec<Option<f64>> = vec![None; n];
    for (o, d) in combined.iter_mut().zip(&dist) {
        if let Some(d) = d {
            if *d == 0.0 {
                exact += 1;
            }
            let v = params.apply(d.abs());
            sum += v;
            *o = Some(v);
        }
    }
    (exact, sum)
}

/// The packed equivalent: one fused distance+stats pass writing 8-byte
/// values plus a byte mask, a stats-served (or 8-byte-selection) fit,
/// and one fused normalize walk over the packed buffers.
fn packed_repr_pipeline(xs: &[f64], t: f64, budget: usize) -> (usize, f64) {
    let n = xs.len();
    let kernel = NumericKernel::Compare(CompareKernel::Greater, Some(t));
    let mut frame = DistanceFrame::undefined(n);
    let stats = {
        let (vals, mask) = frame.parts_mut();
        batch::run_frame(xs, None, kernel, vals, mask)
    };
    let params = fit_frame(&frame, &stats, 1.0, budget);
    let mut exact = 0usize;
    let mut sum = 0.0f64;
    let mut out = DistanceFrame::undefined(n);
    {
        let (ovals, omask) = out.parts_mut();
        for (((ov, om), &d), &ok) in ovals
            .iter_mut()
            .zip(omask.iter_mut())
            .zip(frame.values())
            .zip(frame.validity().as_slice())
        {
            if ok {
                if d == 0.0 {
                    exact += 1;
                }
                let v = params.apply(d.abs());
                sum += v;
                *ov = v;
                *om = true;
            }
        }
    }
    (exact, sum)
}

/// Slider-drag micro-bench: a warm session alternates between two
/// contained bound modifications, once through the sorted-projection
/// incremental path ([`Session::drag_slider`]) and once through a full
/// eager recompute ([`Session::set_predicate_target`]). Asserts the two
/// paths agree before timing.
fn bench_slider(db: &Arc<Database>, n: usize, min_reps: usize) -> (f64, f64) {
    // contained tightenings within the exact region (k <= num_exact):
    // the common interactive case, and one the fast path serves in
    // O(log n + k) regardless of normalization plateaus
    let targets = [n as f64 * 0.97, n as f64 * 0.975];
    let target = |t: f64| PredicateTarget::Compare {
        op: CompareOp::Ge,
        value: Value::Float(t),
    };
    let make = || {
        let mut s = Session::new(Arc::clone(db), ConnectionRegistry::new());
        s.set_display_policy(DisplayPolicy::Percentage(1.0))
            .expect("policy");
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, n as f64 * 0.9)
                .build(),
        )
        .expect("query");
        s
    };
    // correctness first: the incremental drag must equal a full recompute
    let mut inc = make();
    for &t in &targets {
        let drag = inc.drag_slider(0, target(t)).expect("drag");
        assert!(drag.incremental, "fast path must engage at n={n}");
        let mut full = make();
        full.set_predicate_target(0, target(t)).expect("set");
        let res = full.result().expect("result");
        assert_eq!(drag.displayed, res.pipeline.displayed, "drag diverges");
        assert_eq!(drag.num_exact, res.pipeline.num_exact);
    }
    // timed: alternate contained drags (projection + cache stay warm)
    let mut flip = 0usize;
    let inc_s = time_per_call(min_reps.max(3), || {
        flip += 1;
        inc.drag_slider(0, target(targets[flip % 2])).expect("drag")
    });
    let mut full = make();
    let mut flip = 0usize;
    let full_s = time_per_call(min_reps, || {
        flip += 1;
        full.set_predicate_target(0, target(targets[flip % 2]))
            .expect("set");
    });
    (inc_s, full_s)
}

/// Time `f` until it has run at least `min_reps` times *and* ~0.5 s has
/// elapsed; returns seconds per call.
fn time_per_call<T>(min_reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    let mut reps = 0usize;
    loop {
        std::hint::black_box(f());
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if reps >= min_reps && (elapsed >= 0.5 || reps >= 50) {
            return elapsed / reps as f64;
        }
    }
}

fn assert_identical(fast: &PipelineOutput, slow: &PipelineOutput, n: usize) {
    assert_eq!(fast.combined, slow.combined, "combined diverges at n={n}");
    assert_eq!(
        fast.num_exact, slow.num_exact,
        "num_exact diverges at n={n}"
    );
    assert_eq!(
        fast.displayed, slow.displayed,
        "displayed diverges at n={n}"
    );
    assert_eq!(
        fast.order[..fast.sorted_len],
        slow.order[..fast.sorted_len],
        "sorted order prefix diverges at n={n}"
    );
    assert!(
        fast.sorted_len < fast.order.len(),
        "top-k selection must engage when the display count < n (n={n})"
    );
    for (f, s) in fast.windows.iter().zip(&slow.windows) {
        assert_eq!(f.norm_params, s.norm_params, "norm params diverge at n={n}");
        assert_eq!(
            f.zero_raw_count(),
            s.zero_raw_count(),
            "window exact counts diverge at n={n}"
        );
        for &i in &fast.displayed {
            assert_eq!(f.raw_at(i), s.raw_at(i), "window raw diverges at n={n}");
            assert_eq!(
                f.normalized_at(i),
                s.normalized_at(i),
                "window norm diverges at n={n}"
            );
        }
    }
}

/// Deterministic pseudo-random combined-distance vector for the sort
/// micro-benchmark (xorshift; no `rand` in the timed path).
fn synthetic_combined(n: usize, seed: u64) -> Vec<Option<f64>> {
    let mut state = seed.max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Some((state >> 11) as f64 / (1u64 << 53) as f64 * 255.0)
        })
        .collect()
}

fn rank_cmp(combined: &[Option<f64>], a: usize, b: usize) -> std::cmp::Ordering {
    combined[a]
        .partial_cmp(&combined[b])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.cmp(&b))
}

fn bench_size(n: usize, smoke: bool) -> SizeResult {
    // the acceptance workload: one numeric predicate over a float ramp,
    // displaying 1% (so top-k selection replaces the full sort)
    let db: Arc<Database> = Arc::new(ramp_db(n));
    let table = db.table("T").expect("ramp table");
    let resolver = DistanceResolver::new();
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, n as f64 * 0.9)
        .build();
    let cond = q.condition.as_ref();
    let policy = DisplayPolicy::Percentage(1.0);

    let run_materialized =
        |cond: Option<&visdb_query::ast::Weighted>, trace: bool| -> PipelineOutput {
            run_pipeline_opts(
                &db,
                table,
                &resolver,
                cond,
                &policy,
                PipelineOptions {
                    materialization: Materialization::Materialized,
                    trace,
                    ..Default::default()
                },
            )
            .expect("materialized vectorized")
        };
    // `run_pipeline` without caches = the Auto planner streaming
    let stream = run_pipeline(&db, table, &resolver, cond, &policy).expect("streaming");
    let mat = run_materialized(cond, false);
    let slow = run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar");
    assert_identical(&stream, &slow, n);
    assert_identical(&mat, &slow, n);
    // partitioned execution must be bit-identical at every partition
    // count, including counts that leave partitions empty — and both
    // with (default) streaming and materialized execution
    for parts in [1usize, 2, 7, BENCH_PARTITIONS, 16] {
        let part =
            run_pipeline_partitioned(&db, table, &resolver, cond, &policy, parts).expect("parts");
        assert_identical(&part, &slow, n);
    }
    {
        let partitioning = table.partitions(BENCH_PARTITIONS);
        let part = run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond,
            &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                partitions: Some(&partitioning),
                ..Default::default()
            },
        )
        .expect("materialized partitioned");
        assert_identical(&part, &slow, n);
    }

    let min_reps = if smoke { 1 } else { 3 };
    let scalar_s = time_per_call(min_reps, || {
        run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar")
    });
    // the vectorized/partitioned/scoped series stay on the materialized
    // path so they remain comparable with the committed history; the
    // streaming mode gets its own A/B below
    let vector_s = time_per_call(min_reps, || run_materialized(cond, false));
    let partitioned_s = time_per_call(min_reps, || {
        let partitioning = table.partitions(BENCH_PARTITIONS);
        run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond,
            &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                partitions: Some(&partitioning),
                ..Default::default()
            },
        )
        .expect("partitioned")
    });
    // the same vectorized pipeline with fan-out forced back onto
    // per-walk scoped spawns — the pre-runtime baseline
    let scoped_s =
        chunk::with_scoped_spawns(|| time_per_call(min_reps, || run_materialized(cond, false)));

    // ---- streaming vs materialized A/B: the 2-predicate workload the
    // streaming mode targets (per-predicate frame traffic dominates) ---
    let q2 = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, n as f64 * 0.9)
        .cmp("x", CompareOp::Lt, n as f64 * 0.95)
        .build();
    let cond2 = q2.condition.as_ref();
    let run_streaming = |trace: bool| -> PipelineOutput {
        run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond2,
            &policy,
            PipelineOptions {
                materialization: Materialization::Streaming,
                trace,
                ..Default::default()
            },
        )
        .expect("streaming 2-predicate")
    };
    let slow2 = run_pipeline_scalar(&db, table, &resolver, cond2, &policy).expect("scalar 2-pred");
    let stream2 = run_streaming(false);
    assert_identical(&stream2, &slow2, n);
    assert!(
        stream2.windows.iter().all(|w| w.full_frames().is_none()),
        "the A/B streaming arm must actually stream at n={n}"
    );
    let materialized2_s = time_per_call(min_reps, || run_materialized(cond2, false));
    let streaming2_s = time_per_call(min_reps, || run_streaming(false));
    let mut streaming_phases = PhaseTimings::default();
    let streaming_phase_reps = min_reps.max(3);
    for _ in 0..streaming_phase_reps {
        let out = run_streaming(true);
        accumulate_phases(&mut streaming_phases, &out);
        std::hint::black_box(out);
    }
    let streaming_per_ms =
        |d: std::time::Duration| d.as_secs_f64() * 1e3 / streaming_phase_reps as f64;

    // top-k vs full sort on the same synthetic ranking problem
    let combined = synthetic_combined(n, 0x5eed ^ n as u64);
    let k = (n / 100).max(1);
    let full_sort_s = time_per_call(min_reps, || {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| rank_cmp(&combined, a, b));
        idx
    });
    let topk_s = time_per_call(min_reps, || {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.select_nth_unstable_by(k - 1, |&a, &b| rank_cmp(&combined, a, b));
        idx[..k].sort_unstable_by(|&a, &b| rank_cmp(&combined, a, b));
        idx
    });

    // per-phase breakdown of one vectorized run (averaged over the
    // reps), read off the first-class `PipelineTrace`
    let mut phases = PhaseTimings::default();
    let phase_reps = min_reps.max(3);
    for _ in 0..phase_reps {
        let out = run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond,
            &policy,
            PipelineOptions {
                trace: true,
                ..Default::default()
            },
        )
        .expect("timed vectorized");
        accumulate_phases(&mut phases, &out);
        std::hint::black_box(out);
    }
    let per_ms = |d: std::time::Duration| d.as_secs_f64() * 1e3 / phase_reps as f64;

    // representation A/B: identical single-threaded workload, only the
    // intermediate representation differs
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let t = n as f64 * 0.9;
    let budget = (n / 100).max(1);
    assert_eq!(
        option_repr_pipeline(&xs, t, budget),
        packed_repr_pipeline(&xs, t, budget),
        "representation A/B must agree at n={n}"
    );
    let option_s = time_per_call(min_reps, || option_repr_pipeline(&xs, t, budget));
    let packed_s = time_per_call(min_reps, || packed_repr_pipeline(&xs, t, budget));

    // slider drag: incremental sorted-projection path vs full recompute
    let (drag_inc_s, drag_full_s) = bench_slider(&db, n, min_reps);

    // ---- observability overhead A/B: arm A is the plain trace-off run
    // (what a non-traced session executes); arm B runs the identical
    // pipeline with tracing on and replays the registry recording the
    // service layer performs per fresh query — four per-phase histogram
    // records, the op counter, and the op-latency histogram. The ratio
    // gates the "telemetry is near-free" claim end to end.
    let obs_baseline_s = time_per_call(min_reps, || run_materialized(cond, false));
    let registry = Registry::new();
    let obs_requests = registry.counter("service.requests.summary");
    let obs_latency = registry.histogram("service.latency_ns.summary");
    let obs_phase: Vec<Arc<Histogram>> = ["distance", "fit", "normalize_combine", "rank"]
        .iter()
        .map(|p| registry.histogram(&format!("pipeline.phase.{p}")))
        .collect();
    let obs_instrumented_s = time_per_call(min_reps, || {
        let started = Instant::now();
        let out = run_materialized(cond, true);
        let t = out.trace.as_deref().expect("instrumented arm traces");
        obs_phase[0].record_duration(t.phases.distance);
        obs_phase[1].record_duration(t.phases.fit);
        obs_phase[2].record_duration(t.phases.normalize_combine);
        obs_phase[3].record_duration(t.phases.rank);
        obs_requests.inc();
        obs_latency.record_duration(started.elapsed());
        out
    });

    SizeResult {
        n,
        scalar_rows_per_sec: n as f64 / scalar_s,
        vectorized_rows_per_sec: n as f64 / vector_s,
        partitioned_rows_per_sec: n as f64 / partitioned_s,
        scoped_rows_per_sec: n as f64 / scoped_s,
        speedup: scalar_s / vector_s,
        partitioned_vs_vectorized: vector_s / partitioned_s,
        pooled_vs_scoped: scoped_s / vector_s,
        full_sort_ms: full_sort_s * 1e3,
        topk_ms: topk_s * 1e3,
        topk_k: k,
        phase_distance_ms: per_ms(phases.distance),
        phase_fit_ms: per_ms(phases.fit),
        phase_normalize_combine_ms: per_ms(phases.normalize_combine),
        phase_rank_ms: per_ms(phases.rank),
        option_repr_rows_per_sec: n as f64 / option_s,
        packed_repr_rows_per_sec: n as f64 / packed_s,
        packed_vs_option: option_s / packed_s,
        drag_incremental_us: drag_inc_s * 1e6,
        drag_full_us: drag_full_s * 1e6,
        drag_speedup: drag_full_s / drag_inc_s,
        materialized2_rows_per_sec: n as f64 / materialized2_s,
        streaming2_rows_per_sec: n as f64 / streaming2_s,
        streaming_vs_materialized: materialized2_s / streaming2_s,
        streaming_phase_distance_ms: streaming_per_ms(streaming_phases.distance),
        streaming_phase_fit_ms: streaming_per_ms(streaming_phases.fit),
        streaming_phase_normalize_combine_ms: streaming_per_ms(streaming_phases.normalize_combine),
        streaming_phase_rank_ms: streaming_per_ms(streaming_phases.rank),
        obs_baseline_rows_per_sec: n as f64 / obs_baseline_s,
        obs_instrumented_rows_per_sec: n as f64 / obs_instrumented_s,
        obs_overhead: obs_baseline_s / obs_instrumented_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[2_000, 40_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut results = Vec::new();
    for &n in sizes {
        let r = bench_size(n, smoke);
        println!(
            "n={:>9}: scalar {:>12.0} rows/s | vectorized {:>12.0} rows/s | \
             partitioned(x{BENCH_PARTITIONS}) {:>12.0} rows/s | scoped {:>12.0} rows/s | \
             speedup {:>5.2}x | pooled/scoped {:>5.2}x | sort {:>8.2} ms vs top-{} {:>7.3} ms",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.partitioned_rows_per_sec,
            r.scoped_rows_per_sec,
            r.speedup,
            r.pooled_vs_scoped,
            r.full_sort_ms,
            r.topk_k,
            r.topk_ms,
        );
        println!(
            "            phases: distance {:.3} ms | fit {:.3} ms | norm+combine {:.3} ms | \
             rank {:.3} ms",
            r.phase_distance_ms, r.phase_fit_ms, r.phase_normalize_combine_ms, r.phase_rank_ms,
        );
        println!(
            "            packed-vs-Option: {:>12.0} vs {:>12.0} rows/s ({:.2}x) | \
             slider drag: {:>9.1} us incremental vs {:>9.1} us full ({:.1}x)",
            r.packed_repr_rows_per_sec,
            r.option_repr_rows_per_sec,
            r.packed_vs_option,
            r.drag_incremental_us,
            r.drag_full_us,
            r.drag_speedup,
        );
        println!(
            "            streaming-vs-materialized (2-pred): {:>12.0} vs {:>12.0} rows/s ({:.2}x) | \
             streaming phases: distance {:.3} ms | fit {:.3} ms | norm+combine {:.3} ms | rank {:.3} ms",
            r.streaming2_rows_per_sec,
            r.materialized2_rows_per_sec,
            r.streaming_vs_materialized,
            r.streaming_phase_distance_ms,
            r.streaming_phase_fit_ms,
            r.streaming_phase_normalize_combine_ms,
            r.streaming_phase_rank_ms,
        );
        println!(
            "            obs overhead: {:>12.0} rows/s baseline vs {:>12.0} rows/s \
             traced+recorded ({:.3}x)",
            r.obs_baseline_rows_per_sec, r.obs_instrumented_rows_per_sec, r.obs_overhead,
        );
        results.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"workload\": \"x >= 0.9n numeric predicate over a float ramp, Percentage(1) display\","
    );
    let _ = writeln!(json, "  \"bench_partitions\": {BENCH_PARTITIONS},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"scalar_rows_per_sec\": {:.0}, \"vectorized_rows_per_sec\": {:.0}, \
             \"partitioned_rows_per_sec\": {:.0}, \"scoped_rows_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"partitioned_vs_vectorized\": {:.3}, \
             \"pooled_vs_scoped\": {:.3}, \
             \"full_sort_ms\": {:.3}, \"topk_ms\": {:.3}, \"topk_k\": {},",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.partitioned_rows_per_sec,
            r.scoped_rows_per_sec,
            r.speedup,
            r.partitioned_vs_vectorized,
            r.pooled_vs_scoped,
            r.full_sort_ms,
            r.topk_ms,
            r.topk_k,
        );
        let _ = writeln!(
            json,
            "     \"phase_ms\": {{\"distance\": {:.3}, \"fit\": {:.3}, \
             \"normalize_combine\": {:.3}, \"rank\": {:.3}}},",
            r.phase_distance_ms, r.phase_fit_ms, r.phase_normalize_combine_ms, r.phase_rank_ms,
        );
        let _ = writeln!(
            json,
            "     \"option_repr_rows_per_sec\": {:.0}, \"packed_repr_rows_per_sec\": {:.0}, \
             \"packed_vs_option\": {:.3},",
            r.option_repr_rows_per_sec, r.packed_repr_rows_per_sec, r.packed_vs_option,
        );
        let _ = writeln!(
            json,
            "     \"drag_incremental_us\": {:.1}, \"drag_full_us\": {:.1}, \
             \"drag_speedup\": {:.2},",
            r.drag_incremental_us, r.drag_full_us, r.drag_speedup,
        );
        let _ = writeln!(
            json,
            "     \"materialized2_rows_per_sec\": {:.0}, \"streaming2_rows_per_sec\": {:.0}, \
             \"streaming_vs_materialized\": {:.3},",
            r.materialized2_rows_per_sec, r.streaming2_rows_per_sec, r.streaming_vs_materialized,
        );
        let _ = writeln!(
            json,
            "     \"streaming_phase_ms\": {{\"distance\": {:.3}, \"fit\": {:.3}, \
             \"normalize_combine\": {:.3}, \"rank\": {:.3}}},",
            r.streaming_phase_distance_ms,
            r.streaming_phase_fit_ms,
            r.streaming_phase_normalize_combine_ms,
            r.streaming_phase_rank_ms,
        );
        let _ = writeln!(
            json,
            "     \"obs_baseline_rows_per_sec\": {:.0}, \
             \"obs_instrumented_rows_per_sec\": {:.0}, \"obs_overhead\": {:.3}}}{}",
            r.obs_baseline_rows_per_sec,
            r.obs_instrumented_rows_per_sec,
            r.obs_overhead,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_pipeline.json";
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");

    if !smoke {
        if let Some(big) = results.iter().max_by_key(|r| r.n) {
            // End-to-end scalar timing swings wildly on a contended
            // single-core box (committed history spans 2.1M..12.8M
            // scalar rows/s at n=1M with an unchanged binary), so the
            // acceptance gates are (a) the stable algorithmic win —
            // top-k selection beats the full sort — and (b) no
            // end-to-end regression beyond noise.
            assert!(
                big.full_sort_ms >= 2.0 * big.topk_ms,
                "acceptance: top-k selection must be >= 2x faster than the full sort \
                 at n={} (sort {:.2} ms vs top-k {:.2} ms)",
                big.n,
                big.full_sort_ms,
                big.topk_ms
            );
            assert!(
                big.speedup >= 0.8,
                "acceptance: vectorized must not regress vs scalar at n={} (got {:.2}x)",
                big.n,
                big.speedup
            );
            // The two stable representation gates: both compare the same
            // algorithm with only the data layout / access path changed,
            // so the ratios are far less noise-prone than end-to-end
            // wall clock on a contended box.
            assert!(
                big.packed_vs_option >= 1.3,
                "acceptance: packed frames must be >= 1.3x the Option \
                 representation at n={} (got {:.2}x)",
                big.n,
                big.packed_vs_option
            );
            assert!(
                big.streaming_vs_materialized >= 1.3,
                "acceptance: streaming execution must be >= 1.3x the materialized \
                 path on the 2-predicate workload at n={} (got {:.2}x: {:.0} vs {:.0} rows/s)",
                big.n,
                big.streaming_vs_materialized,
                big.streaming2_rows_per_sec,
                big.materialized2_rows_per_sec
            );
            assert!(
                big.obs_overhead >= 0.95,
                "acceptance: tracing + registry recording must keep >= 95% of the \
                 untraced throughput at n={} (got {:.3}x: {:.0} vs {:.0} rows/s)",
                big.n,
                big.obs_overhead,
                big.obs_instrumented_rows_per_sec,
                big.obs_baseline_rows_per_sec
            );
            assert!(
                big.drag_speedup >= 5.0,
                "acceptance: the incremental sorted-projection slider drag must be \
                 >= 5x a full recompute at n={} (got {:.2}x: {:.1} us vs {:.1} us)",
                big.n,
                big.drag_speedup,
                big.drag_incremental_us,
                big.drag_full_us
            );
        }
    }
}
