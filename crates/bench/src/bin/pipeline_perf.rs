//! Machine-readable perf record of the relevance hot path: scalar
//! (per-tuple, full-sort) vs vectorized (columnar kernels, chunked
//! data-parallel execution, top-k selection) vs partitioned (per-
//! partition passes + k-way merged top-k) rows/sec, pooled-vs-scoped
//! fan-out timings, plus isolated top-k-vs-full-sort timings. Results
//! are written to `BENCH_pipeline.json` so future PRs can track the
//! perf trajectory.
//!
//! ```sh
//! cargo run --release -p visdb-bench --bin pipeline_perf            # full (n up to 1M)
//! cargo run --release -p visdb-bench --bin pipeline_perf -- --smoke # CI: tiny n, asserts only
//! ```
//!
//! In both modes the binary *asserts* that the vectorized **and
//! partitioned** outputs are identical to the scalar reference before
//! it times anything — a kernel or merge regression that changes
//! results or panics fails the run regardless of timing noise.

use std::fmt::Write as _;
use std::time::Instant;

use visdb_bench::ramp_db;
use visdb_distance::DistanceResolver;
use visdb_query::ast::CompareOp;
use visdb_query::builder::QueryBuilder;
use visdb_relevance::chunk;
use visdb_relevance::pipeline::{
    run_pipeline, run_pipeline_partitioned, run_pipeline_scalar, DisplayPolicy, PipelineOutput,
};
use visdb_storage::Database;

/// Partition count for the timed partitioned runs (smoke identity
/// checks additionally cover 1, 2, 7 and 16).
const BENCH_PARTITIONS: usize = 8;

struct SizeResult {
    n: usize,
    scalar_rows_per_sec: f64,
    vectorized_rows_per_sec: f64,
    partitioned_rows_per_sec: f64,
    scoped_rows_per_sec: f64,
    speedup: f64,
    /// Partitioned vs unpartitioned vectorized (≈ 1.0 expected on one
    /// box: same work, different scheduling).
    partitioned_vs_vectorized: f64,
    /// Shared-pool fan-out vs per-walk scoped spawns (> 1.0 means the
    /// persistent pool wins).
    pooled_vs_scoped: f64,
    full_sort_ms: f64,
    topk_ms: f64,
    topk_k: usize,
}

/// Time `f` until it has run at least `min_reps` times *and* ~0.5 s has
/// elapsed; returns seconds per call.
fn time_per_call<T>(min_reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    let mut reps = 0usize;
    loop {
        std::hint::black_box(f());
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if reps >= min_reps && (elapsed >= 0.5 || reps >= 50) {
            return elapsed / reps as f64;
        }
    }
}

fn assert_identical(fast: &PipelineOutput, slow: &PipelineOutput, n: usize) {
    assert_eq!(fast.combined, slow.combined, "combined diverges at n={n}");
    assert_eq!(
        fast.num_exact, slow.num_exact,
        "num_exact diverges at n={n}"
    );
    assert_eq!(
        fast.displayed, slow.displayed,
        "displayed diverges at n={n}"
    );
    assert_eq!(
        fast.order[..fast.sorted_len],
        slow.order[..fast.sorted_len],
        "sorted order prefix diverges at n={n}"
    );
    assert!(
        fast.sorted_len < fast.order.len(),
        "top-k selection must engage when the display count < n (n={n})"
    );
    for (f, s) in fast.windows.iter().zip(&slow.windows) {
        assert_eq!(*f.raw, *s.raw, "window raw diverges at n={n}");
        assert_eq!(
            *f.normalized, *s.normalized,
            "window norm diverges at n={n}"
        );
    }
}

/// Deterministic pseudo-random combined-distance vector for the sort
/// micro-benchmark (xorshift; no `rand` in the timed path).
fn synthetic_combined(n: usize, seed: u64) -> Vec<Option<f64>> {
    let mut state = seed.max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Some((state >> 11) as f64 / (1u64 << 53) as f64 * 255.0)
        })
        .collect()
}

fn rank_cmp(combined: &[Option<f64>], a: usize, b: usize) -> std::cmp::Ordering {
    combined[a]
        .partial_cmp(&combined[b])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.cmp(&b))
}

fn bench_size(n: usize, smoke: bool) -> SizeResult {
    // the acceptance workload: one numeric predicate over a float ramp,
    // displaying 1% (so top-k selection replaces the full sort)
    let db: Database = ramp_db(n);
    let table = db.table("T").expect("ramp table");
    let resolver = DistanceResolver::new();
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, n as f64 * 0.9)
        .build();
    let cond = q.condition.as_ref();
    let policy = DisplayPolicy::Percentage(1.0);

    let fast = run_pipeline(&db, table, &resolver, cond, &policy).expect("vectorized");
    let slow = run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar");
    assert_identical(&fast, &slow, n);
    // partitioned execution must be bit-identical at every partition
    // count, including counts that leave partitions empty
    for parts in [1usize, 2, 7, BENCH_PARTITIONS, 16] {
        let part =
            run_pipeline_partitioned(&db, table, &resolver, cond, &policy, parts).expect("parts");
        assert_identical(&part, &slow, n);
    }

    let min_reps = if smoke { 1 } else { 3 };
    let scalar_s = time_per_call(min_reps, || {
        run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar")
    });
    let vector_s = time_per_call(min_reps, || {
        run_pipeline(&db, table, &resolver, cond, &policy).expect("vectorized")
    });
    let partitioned_s = time_per_call(min_reps, || {
        run_pipeline_partitioned(&db, table, &resolver, cond, &policy, BENCH_PARTITIONS)
            .expect("partitioned")
    });
    // the same vectorized pipeline with fan-out forced back onto
    // per-walk scoped spawns — the pre-runtime baseline
    let scoped_s = chunk::with_scoped_spawns(|| {
        time_per_call(min_reps, || {
            run_pipeline(&db, table, &resolver, cond, &policy).expect("scoped vectorized")
        })
    });

    // top-k vs full sort on the same synthetic ranking problem
    let combined = synthetic_combined(n, 0x5eed ^ n as u64);
    let k = (n / 100).max(1);
    let full_sort_s = time_per_call(min_reps, || {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| rank_cmp(&combined, a, b));
        idx
    });
    let topk_s = time_per_call(min_reps, || {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.select_nth_unstable_by(k - 1, |&a, &b| rank_cmp(&combined, a, b));
        idx[..k].sort_unstable_by(|&a, &b| rank_cmp(&combined, a, b));
        idx
    });

    SizeResult {
        n,
        scalar_rows_per_sec: n as f64 / scalar_s,
        vectorized_rows_per_sec: n as f64 / vector_s,
        partitioned_rows_per_sec: n as f64 / partitioned_s,
        scoped_rows_per_sec: n as f64 / scoped_s,
        speedup: scalar_s / vector_s,
        partitioned_vs_vectorized: vector_s / partitioned_s,
        pooled_vs_scoped: scoped_s / vector_s,
        full_sort_ms: full_sort_s * 1e3,
        topk_ms: topk_s * 1e3,
        topk_k: k,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[2_000, 40_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut results = Vec::new();
    for &n in sizes {
        let r = bench_size(n, smoke);
        println!(
            "n={:>9}: scalar {:>12.0} rows/s | vectorized {:>12.0} rows/s | \
             partitioned(x{BENCH_PARTITIONS}) {:>12.0} rows/s | scoped {:>12.0} rows/s | \
             speedup {:>5.2}x | pooled/scoped {:>5.2}x | sort {:>8.2} ms vs top-{} {:>7.3} ms",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.partitioned_rows_per_sec,
            r.scoped_rows_per_sec,
            r.speedup,
            r.pooled_vs_scoped,
            r.full_sort_ms,
            r.topk_k,
            r.topk_ms,
        );
        results.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"workload\": \"x >= 0.9n numeric predicate over a float ramp, Percentage(1) display\","
    );
    let _ = writeln!(json, "  \"bench_partitions\": {BENCH_PARTITIONS},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"scalar_rows_per_sec\": {:.0}, \"vectorized_rows_per_sec\": {:.0}, \
             \"partitioned_rows_per_sec\": {:.0}, \"scoped_rows_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"partitioned_vs_vectorized\": {:.3}, \
             \"pooled_vs_scoped\": {:.3}, \
             \"full_sort_ms\": {:.3}, \"topk_ms\": {:.3}, \"topk_k\": {}}}{}",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.partitioned_rows_per_sec,
            r.scoped_rows_per_sec,
            r.speedup,
            r.partitioned_vs_vectorized,
            r.pooled_vs_scoped,
            r.full_sort_ms,
            r.topk_ms,
            r.topk_k,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_pipeline.json";
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");

    if !smoke {
        if let Some(big) = results.iter().max_by_key(|r| r.n) {
            // End-to-end scalar timing swings wildly on a contended
            // single-core box (committed history spans 2.1M..12.8M
            // scalar rows/s at n=1M with an unchanged binary), so the
            // acceptance gates are (a) the stable algorithmic win —
            // top-k selection beats the full sort — and (b) no
            // end-to-end regression beyond noise.
            assert!(
                big.full_sort_ms >= 2.0 * big.topk_ms,
                "acceptance: top-k selection must be >= 2x faster than the full sort \
                 at n={} (sort {:.2} ms vs top-k {:.2} ms)",
                big.n,
                big.full_sort_ms,
                big.topk_ms
            );
            assert!(
                big.speedup >= 0.8,
                "acceptance: vectorized must not regress vs scalar at n={} (got {:.2}x)",
                big.n,
                big.speedup
            );
        }
    }
}
