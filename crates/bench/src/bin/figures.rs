//! Regenerate every figure of the paper (fig 1a, 1b, 2a/2b, 3, 4, 5) as
//! PPM images under `out/` plus the printed panels. See DESIGN.md §3 and
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p visdb-bench --bin figures
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use visdb_arrange::{arrange_grouped2d, arrange_overall, grouped2d::Item2D, PixelsPerItem};
use visdb_color::{Colormap, Rgb, BACKGROUND};
use visdb_core::{render_session, JoinOptions, RenderOptions, Session};
use visdb_data::distributions::{mixture, normal, rng};
use visdb_data::{generate_environmental, EnvConfig};
use visdb_query::parser::parse_query;
use visdb_query::printer::render_query;
use visdb_relevance::pipeline::DisplayPolicy;
use visdb_relevance::reduction::gap_cutoff;
use visdb_render::{compose_grid, render_item_window, write_ppm, Framebuffer, WindowSpec};
use visdb_types::Result;

fn save(fb: &Framebuffer, path: &str) -> Result<()> {
    let file = File::create(path)?;
    write_ppm(fb, BufWriter::new(file))?;
    println!("wrote {path} ({}x{})", fb.width(), fb.height());
    Ok(())
}

/// Fig 1a: the rectangular-spiral arrangement. Items carry a unimodal
/// distance distribution; exact answers form the yellow core.
fn fig1a() -> Result<()> {
    let mut r = rng(11);
    let n = 60 * 60;
    // 8% exact answers, the rest increasingly distant
    let mut distances: Vec<f64> = (0..n)
        .map(|i| {
            if i < n / 12 {
                0.0
            } else {
                (normal(&mut r, 120.0, 60.0)).clamp(1.0, 255.0)
            }
        })
        .collect();
    distances.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let ranked: Vec<usize> = (0..n).collect();
    let grid = arrange_overall(&ranked, 60, 60);
    let map = Colormap::default();
    let colors =
        |item: u32| -> Option<Rgb> { map.color_for_distance(distances[item as usize]).ok() };
    let fb = render_item_window(
        &WindowSpec {
            grid: &grid,
            colors: &colors,
            highlighted: &[],
        },
        PixelsPerItem::Four,
    );
    save(&fb, "out/fig1a.ppm")
}

/// Fig 1b: the 2D arrangement — two attributes on the axes, placement by
/// distance sign, color by combined distance.
fn fig1b() -> Result<()> {
    let mut r = rng(13);
    let n = 2400;
    let mut items: Vec<(Item2D, f64)> = (0..n)
        .map(|i| {
            let dx = normal(&mut r, 0.0, 80.0);
            let dy = normal(&mut r, 0.0, 80.0);
            let (dx, dy) = if i < n / 10 { (0.0, 0.0) } else { (dx, dy) };
            let combined = (dx.abs() + dy.abs()).min(255.0);
            (Item2D { item: i, dx, dy }, combined)
        })
        .collect();
    // sort by relevance (ascending combined distance)
    items.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let placed: Vec<Item2D> = items.iter().map(|(it, _)| *it).collect();
    let grid = arrange_grouped2d(&placed, 64, 64);
    let by_item: Vec<f64> = {
        let mut v = vec![0.0; n];
        for (it, c) in &items {
            v[it.item] = *c;
        }
        v
    };
    let map = Colormap::default();
    let colors = |item: u32| -> Option<Rgb> { map.color_for_distance(by_item[item as usize]).ok() };
    let fb = render_item_window(
        &WindowSpec {
            grid: &grid,
            colors: &colors,
            highlighted: &[],
        },
        PixelsPerItem::Four,
    );
    save(&fb, "out/fig1b.ppm")
}

/// Fig 2: the two density shapes motivating the reduction heuristic,
/// with the gap-heuristic cut point printed for each.
fn fig2() -> Result<()> {
    let mut r = rng(17);
    let unimodal: Vec<f64> = (0..4000)
        .map(|_| normal(&mut r, 100.0, 25.0).max(0.0))
        .collect();
    let bimodal: Vec<f64> = (0..4000)
        .map(|_| mixture(&mut r, 0.55, (40.0, 10.0), (200.0, 12.0)).max(0.0))
        .collect();
    for (name, data) in [("fig2a", &unimodal), ("fig2b", &bimodal)] {
        // render the density as a histogram curve
        let (w, h) = (256usize, 96usize);
        let mut hist = vec![0usize; w];
        let max_v = data.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        for &v in data {
            let b = ((v / max_v) * (w - 1) as f64) as usize;
            hist[b] += 1;
        }
        let peak = *hist.iter().max().expect("nonempty") as f64;
        let mut fb = Framebuffer::new(w, h, BACKGROUND);
        for (x, &c) in hist.iter().enumerate() {
            let bar = ((c as f64 / peak) * (h - 1) as f64) as usize;
            for y in 0..bar {
                fb.set(x, h - 1 - y, Rgb::new(240, 220, 80));
            }
        }
        save(&fb, &format!("out/{name}.ppm"))?;
        // the heuristic's cut
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let cut = gap_cutoff(&sorted, 400, 3600, 25)?;
        println!(
            "{name}: gap-heuristic cut after {} of {} items (distance {:.1}); \
             {}",
            cut + 1,
            sorted.len(),
            sorted[cut],
            if name == "fig2b" {
                "cuts at the inter-group gap -> only the near group is displayed"
            } else {
                "no dominant gap -> cut is data-dependent within [rmin, rmax]"
            }
        );
    }
    Ok(())
}

/// Fig 3: the query-representation tree of the §4.1 example query.
fn fig3(env_registry: &visdb_query::connection::ConnectionRegistry) -> Result<()> {
    let q = parse_query(
        "SELECT Temperature, Solar-Radiation, Humidity, Ozone \
         FROM Weather, Air-Pollution \
         WHERE (Temperature > 15 OR Solar-Radiation > 600 OR Humidity < 60) \
         AND CONNECT with-time-diff(7200) ON Air-Pollution, Weather",
        env_registry,
    )?;
    println!("--- fig 3: Query Representation ---\n{}", render_query(&q));
    Ok(())
}

/// Figs 4 & 5: the visualization & modification window for the example
/// query, and the OR-part drill-down.
fn fig4_and_5() -> Result<()> {
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 30,
        stations: 1,
        ..Default::default()
    });
    fig3(&env.registry)?;

    let mut session = Session::new(Arc::new(env.db), env.registry);
    session.set_window_size(48, 48)?;
    session.set_display_policy(DisplayPolicy::Percentage(40.0))?;
    session.set_join_options(JoinOptions {
        row_cap: 60_000,
        ..Default::default()
    })?;
    session.set_query_text(
        "SELECT Temperature, Solar-Radiation, Humidity, Ozone \
         FROM Weather, Air-Pollution \
         WHERE (Temperature > 15 OR Solar-Radiation > 600 OR Humidity < 60) \
         AND CONNECT with-time-diff(7200) ON Air-Pollution, Weather",
    )?;

    let fb = render_session(
        &mut session,
        &RenderOptions {
            with_spectra: true,
            ..Default::default()
        },
    )?;
    save(&fb, "out/fig4.ppm")?;
    println!("--- fig 4 panel ---\n{}", session.panel()?);

    // fig 5: drill into the OR part; same arrangement as fig 4
    let view = session.drilldown(&[0], false)?;
    let map = session.colormap().clone();
    let mut frames = Vec::new();
    // overall of the OR part
    let combined = view.pipeline.combined.clone();
    let m2 = map.clone();
    let overall_colors = move |item: u32| -> Option<Rgb> {
        combined
            .get(item as usize)
            .copied()
            .flatten()
            .and_then(|d| m2.color_for_distance(d).ok())
    };
    frames.push(render_item_window(
        &WindowSpec {
            grid: &view.grid,
            colors: &overall_colors,
            highlighted: &[],
        },
        PixelsPerItem::One,
    ));
    for w in &view.pipeline.windows {
        let w = w.clone();
        let m2 = map.clone();
        let colors = move |item: u32| -> Option<Rgb> {
            w.normalized_at(item as usize)
                .and_then(|d| m2.color_for_distance(d).ok())
        };
        frames.push(render_item_window(
            &WindowSpec {
                grid: &view.grid,
                colors: &colors,
                highlighted: &[],
            },
            PixelsPerItem::One,
        ));
    }
    let fb5 = compose_grid(&frames, 2, 4);
    save(&fb5, "out/fig5.ppm")?;
    println!(
        "--- fig 5: OR-part windows: {} ---",
        view.pipeline
            .windows
            .iter()
            .map(|w| w.label.clone())
            .collect::<Vec<_>>()
            .join(" | ")
    );

    // the fig 5 anomaly narrative: items whose Humidity misses its
    // predicate (red in the Humidity window) yet are good overall answers
    let res = session.result()?;
    let hum_idx = res
        .pipeline
        .windows
        .iter()
        .position(|w| w.label.contains("OR"))
        .expect("OR window");
    let _ = hum_idx;
    let hum_window = view
        .pipeline
        .windows
        .iter()
        .position(|w| w.label.contains("Humidity"))
        .expect("humidity window");
    let anomalies = res
        .pipeline
        .displayed
        .iter()
        .filter(|&&i| {
            let far_on_humidity =
                matches!(view.pipeline.windows[hum_window].normalized_at(i), Some(d) if d > 150.0);
            let good_overall = matches!(res.pipeline.combined[i], Some(d) if d < 40.0);
            far_on_humidity && good_overall
        })
        .count();
    println!(
        "fig 5 anomaly check: {anomalies} displayed items are red on Humidity yet good overall \
         (the §4.3 'red region' observation)"
    );
    Ok(())
}

fn main() -> Result<()> {
    std::fs::create_dir_all("out")?;
    fig1a()?;
    fig1b()?;
    fig2()?;
    fig4_and_5()?;
    println!("\nall figures regenerated under out/");
    Ok(())
}
