//! Connections — pre-declared, named, possibly parameterised joins.
//!
//! "'Connections' are joins which are defined and named by the database
//! designer (or the user) prior to their actual use. It may have
//! parameters." (§4.1). The Connections window of fig 3 lists entries such
//! as `Air-Pollution at-same-location Weather` and
//! `Air-Pollution with-time-diff(min) Weather`.
//!
//! A [`ConnectionDef`] is the declared template; a [`ConnectionUse`] is an
//! instantiation inside a query (with actual parameter values, e.g.
//! `with-time-diff(120)`).

use std::collections::BTreeMap;
use std::fmt;

use visdb_types::{Error, Result};

use crate::ast::{AttrRef, CompareOp};

/// The join semantics of a connection.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnectionKind {
    /// Plain equi-join `left = right`; approximate distance is the
    /// attribute distance between the operands.
    Equi {
        /// Left join attribute.
        left: AttrRef,
        /// Right join attribute.
        right: AttrRef,
    },
    /// Non-equijoin `left op right` (§4.4 "the distance functions for
    /// non-equijoins (a1 < a2) ... may be determined" analogously).
    NonEqui {
        /// Left join attribute.
        left: AttrRef,
        /// Comparison operator.
        op: CompareOp,
        /// Right join attribute.
        right: AttrRef,
    },
    /// Parameterised timestamp join `|left - right - offset| = 0`, the
    /// `with-time-diff(min)` connection of fig 3. The parameter is the
    /// expected time difference in **seconds** at use time.
    TimeDiff {
        /// Left timestamp attribute.
        left: AttrRef,
        /// Right timestamp attribute.
        right: AttrRef,
    },
    /// Spatial join on two location attributes within a radius parameter
    /// in **meters** (`with-distance(m)`); radius 0 is `at-same-location`.
    SpatialWithin {
        /// Left location attribute.
        left: AttrRef,
        /// Right location attribute.
        right: AttrRef,
    },
    /// Foreign-key join: exact matching only. "the distances on foreign
    /// keys may not have any semantics. In such cases, only those data
    /// items that fulfill the join condition should be considered and no
    /// visualization for the join condition needs to be generated" (§4.4).
    ForeignKey {
        /// Referencing attribute.
        left: AttrRef,
        /// Referenced key attribute.
        right: AttrRef,
    },
}

impl ConnectionKind {
    /// Number of numeric parameters the kind expects at use time.
    pub fn arity(&self) -> usize {
        match self {
            ConnectionKind::TimeDiff { .. } | ConnectionKind::SpatialWithin { .. } => 1,
            _ => 0,
        }
    }

    /// Whether a distance visualization window makes sense (§4.4).
    pub fn is_approximable(&self) -> bool {
        !matches!(self, ConnectionKind::ForeignKey { .. })
    }

    /// The two attributes joined.
    pub fn attrs(&self) -> (&AttrRef, &AttrRef) {
        match self {
            ConnectionKind::Equi { left, right }
            | ConnectionKind::NonEqui { left, right, .. }
            | ConnectionKind::TimeDiff { left, right }
            | ConnectionKind::SpatialWithin { left, right }
            | ConnectionKind::ForeignKey { left, right } => (left, right),
        }
    }
}

/// A declared connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionDef {
    /// Name (e.g. `with-time-diff`).
    pub name: String,
    /// Left table.
    pub left_table: String,
    /// Right table.
    pub right_table: String,
    /// Join semantics.
    pub kind: ConnectionKind,
}

impl ConnectionDef {
    /// Instantiate the connection with parameter values.
    pub fn instantiate(&self, params: Vec<f64>) -> Result<ConnectionUse> {
        if params.len() != self.kind.arity() {
            return Err(Error::invalid_query(format!(
                "connection '{}' expects {} parameter(s), got {}",
                self.name,
                self.kind.arity(),
                params.len()
            )));
        }
        Ok(ConnectionUse {
            def: self.clone(),
            params,
        })
    }
}

impl fmt::Display for ConnectionDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left_table, self.name, self.right_table)
    }
}

/// An instantiated connection inside a query.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionUse {
    /// The declared template.
    pub def: ConnectionDef,
    /// Actual parameter values (`with-time-diff(120)` → `[120.0]`,
    /// interpreted in the unit the kind documents).
    pub params: Vec<f64>,
}

impl ConnectionUse {
    /// Short label for window titles (fig 4 shows e.g.
    /// `W. with-time-diff(120) Air-P.`).
    pub fn label(&self) -> String {
        if self.params.is_empty() {
            format!(
                "{} {} {}",
                self.def.left_table, self.def.name, self.def.right_table
            )
        } else {
            let args: Vec<String> = self.params.iter().map(|p| format!("{p}")).collect();
            format!(
                "{} {}({}) {}",
                self.def.left_table,
                self.def.name,
                args.join(","),
                self.def.right_table
            )
        }
    }
}

/// The Connections window: all declared connections, looked up by name
/// and filtered by the tables a query selects ("all 'connections'
/// involving at least one of the selected tables will appear", §4.1).
#[derive(Debug, Clone, Default)]
pub struct ConnectionRegistry {
    defs: BTreeMap<String, Vec<ConnectionDef>>,
}

impl ConnectionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a connection. Multiple definitions may share a name as long
    /// as they join different table pairs.
    pub fn declare(&mut self, def: ConnectionDef) {
        self.defs.entry(def.name.clone()).or_default().push(def);
    }

    /// Look up a definition by name and table pair (order-sensitive).
    pub fn lookup(&self, name: &str, left: &str, right: &str) -> Result<&ConnectionDef> {
        self.defs
            .get(name)
            .and_then(|v| {
                v.iter()
                    .find(|d| d.left_table == left && d.right_table == right)
            })
            .ok_or_else(|| Error::UnknownConnection(format!("{left} {name} {right}")))
    }

    /// All connections involving at least one of the given tables.
    pub fn involving(&self, tables: &[String]) -> Vec<&ConnectionDef> {
        self.defs
            .values()
            .flatten()
            .filter(|d| tables.contains(&d.left_table) || tables.contains(&d.right_table))
            .collect()
    }

    /// Total declared connections.
    pub fn len(&self) -> usize {
        self.defs.values().map(Vec::len).sum()
    }

    /// True if no connections are declared.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn time_diff_def() -> ConnectionDef {
        ConnectionDef {
            name: "with-time-diff".into(),
            left_table: "Air-Pollution".into(),
            right_table: "Weather".into(),
            kind: ConnectionKind::TimeDiff {
                left: AttrRef::qualified("Air-Pollution", "DateTime"),
                right: AttrRef::qualified("Weather", "DateTime"),
            },
        }
    }

    #[test]
    fn instantiate_checks_arity() {
        let def = time_diff_def();
        assert!(def.instantiate(vec![]).is_err());
        let u = def.instantiate(vec![7200.0]).unwrap();
        assert_eq!(u.params, vec![7200.0]);
        assert_eq!(u.label(), "Air-Pollution with-time-diff(7200) Weather");
    }

    #[test]
    fn registry_lookup_and_involving() {
        let mut reg = ConnectionRegistry::new();
        reg.declare(time_diff_def());
        reg.declare(ConnectionDef {
            name: "at-same-location".into(),
            left_table: "Air-Pollution".into(),
            right_table: "Weather".into(),
            kind: ConnectionKind::SpatialWithin {
                left: AttrRef::qualified("Air-Pollution", "Location"),
                right: AttrRef::qualified("Weather", "Location"),
            },
        });
        assert_eq!(reg.len(), 2);
        assert!(reg
            .lookup("with-time-diff", "Air-Pollution", "Weather")
            .is_ok());
        assert!(reg
            .lookup("with-time-diff", "Weather", "Air-Pollution")
            .is_err());
        assert_eq!(reg.involving(&["Weather".into()]).len(), 2);
        assert_eq!(reg.involving(&["Nope".into()]).len(), 0);
    }

    #[test]
    fn foreign_keys_are_not_approximable() {
        let k = ConnectionKind::ForeignKey {
            left: AttrRef::new("fk"),
            right: AttrRef::new("id"),
        };
        assert!(!k.is_approximable());
        assert!(ConnectionKind::TimeDiff {
            left: AttrRef::new("a"),
            right: AttrRef::new("b"),
        }
        .is_approximable());
    }
}
