//! A mini SQL dialect for VisDB queries.
//!
//! The paper lets users specify queries graphically (GRADI) *or* with
//! "traditional query languages such as SQL" (§4.1). This module is that
//! textual front-end. Grammar (case-insensitive keywords):
//!
//! ```text
//! query     := SELECT projs FROM tables [WHERE or_expr]
//! projs     := '*' | attr (',' attr)*
//! tables    := ident (',' ident)*
//! or_expr   := and_expr (OR and_expr)*
//! and_expr  := unary (AND unary)*
//! unary     := NOT unary
//!            | '(' or_expr ')' [WEIGHT num]
//!            | EXISTS '(' query ')' [WEIGHT num]
//!            | attr IN '(' query ')' [WEIGHT num]
//!            | CONNECT name ['(' num {',' num} ')'] ON ident ',' ident [WEIGHT num]
//!            | attr BETWEEN lit AND lit [WEIGHT num]
//!            | attr AROUND lit DEV num [WEIGHT num]
//!            | attr op lit [WEIGHT num]
//! op        := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! lit       := number | 'string' | TRUE | FALSE | NULL
//! ```
//!
//! Identifiers may contain `-` (the paper uses `Solar-Radiation`,
//! `Air-Pollution`); a `-` starts a number only at literal position.

use visdb_types::{Error, Result, Value};

use crate::ast::{AttrRef, CompareOp, ConditionNode, Predicate, Query, SubqueryLink, Weighted};
use crate::connection::ConnectionRegistry;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            position: Some(self.pos),
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<Tok> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(Tok::Eof);
        }
        let c = self.src[self.pos];
        // multi-char symbols first
        for sym in ["<=", ">=", "<>", "!="] {
            if self.src[self.pos..].starts_with(sym.as_bytes()) {
                self.pos += 2;
                return Ok(Tok::Symbol(match sym {
                    "<=" => "<=",
                    ">=" => ">=",
                    _ => "<>",
                }));
            }
        }
        match c {
            b'(' | b')' | b',' | b'=' | b'<' | b'>' | b'*' | b'.' => {
                self.pos += 1;
                let s = match c {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'=' => "=",
                    b'<' => "<",
                    b'>' => ">",
                    b'*' => "*",
                    _ => ".",
                };
                Ok(Tok::Symbol(s))
            }
            b'\'' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated string literal"));
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?
                    .to_string();
                self.pos += 1;
                Ok(Tok::Str(s))
            }
            b'0'..=b'9' | b'-' | b'+' => self.number(),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len() {
                    let c = self.src[self.pos];
                    // '-' continues an identifier when followed by a letter
                    // (Solar-Radiation) but not a digit (T - 5 is not valid
                    // anyway; we have no arithmetic).
                    let cont = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'-'
                            && self
                                .src
                                .get(self.pos + 1)
                                .is_some_and(|n| n.is_ascii_alphabetic()));
                    if !cont {
                        break;
                    }
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii identifier")
                    .to_string();
                Ok(Tok::Ident(s))
            }
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn number(&mut self) -> Result<Tok> {
        let start = self.pos;
        if matches!(self.src[self.pos], b'-' | b'+') {
            self.pos += 1;
        }
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit()
                || self.src[self.pos] == b'.'
                || self.src[self.pos] == b'e'
                || self.src[self.pos] == b'E'
                || ((self.src[self.pos] == b'-' || self.src[self.pos] == b'+')
                    && matches!(self.src[self.pos - 1], b'e' | b'E')))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        s.parse::<f64>()
            .map(Tok::Number)
            .map_err(|e| self.err(format!("bad number '{s}': {e}")))
    }
}

struct Parser<'a> {
    toks: Vec<Tok>,
    idx: usize,
    registry: &'a ConnectionRegistry,
}

impl<'a> Parser<'a> {
    fn new(src: &str, registry: &'a ConnectionRegistry) -> Result<Self> {
        let mut lx = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let t = lx.next()?;
            let eof = t == Tok::Eof;
            toks.push(t);
            if eof {
                break;
            }
        }
        Ok(Parser {
            toks,
            idx: 0,
            registry,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.idx.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx.min(self.toks.len() - 1)].clone();
        if self.idx < self.toks.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            position: Some(self.idx),
            message: format!("{} (near token {:?})", msg.into(), self.peek()),
        }
    }

    fn keyword(&self) -> Option<String> {
        if let Tok::Ident(s) = self.peek() {
            Some(s.to_ascii_uppercase())
        } else {
            None
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.keyword().as_deref() == Some(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if matches!(self.peek(), Tok::Symbol(s) if *s == sym) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{sym}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    fn attr(&mut self) -> Result<AttrRef> {
        let first = self.ident()?;
        if matches!(self.peek(), Tok::Symbol(".")) {
            self.bump();
            let col = self.ident()?;
            Ok(AttrRef::qualified(first, col))
        } else {
            Ok(AttrRef::new(first))
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.bump() {
            Tok::Number(n) => Ok(if n.fract() == 0.0 && n.abs() < 9e15 {
                // integer-looking literals stay comparable with Int columns
                Value::Float(n)
            } else {
                Value::Float(n)
            }),
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Ident(s) => match s.to_ascii_uppercase().as_str() {
                "TRUE" => Ok(Value::Bool(true)),
                "FALSE" => Ok(Value::Bool(false)),
                "NULL" => Ok(Value::Null),
                _ => Err(self.err(format!("expected literal, found identifier '{s}'"))),
            },
            t => Err(self.err(format!("expected literal, found {t:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.bump() {
            Tok::Number(n) => Ok(n),
            t => Err(self.err(format!("expected number, found {t:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let mut projection = Vec::new();
        if matches!(self.peek(), Tok::Symbol("*")) {
            self.bump();
        } else {
            loop {
                projection.push(self.attr()?);
                if matches!(self.peek(), Tok::Symbol(",")) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_keyword("FROM")?;
        let mut tables = Vec::new();
        loop {
            tables.push(self.ident()?);
            if matches!(self.peek(), Tok::Symbol(",")) {
                self.bump();
            } else {
                break;
            }
        }
        let condition = if self.eat_keyword("WHERE") {
            Some(self.or_expr()?)
        } else {
            None
        };
        Ok(Query {
            tables,
            projection,
            condition,
        })
    }

    fn or_expr(&mut self) -> Result<Weighted> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_keyword("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Weighted::unit(ConditionNode::Or(parts))
        })
    }

    fn and_expr(&mut self) -> Result<Weighted> {
        let mut parts = vec![self.unary()?];
        while self.eat_keyword("AND") {
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Weighted::unit(ConditionNode::And(parts))
        })
    }

    fn weight_suffix(&mut self, mut w: Weighted) -> Result<Weighted> {
        if self.eat_keyword("WEIGHT") {
            w.weight = self.number()?;
        }
        Ok(w)
    }

    fn unary(&mut self) -> Result<Weighted> {
        if self.eat_keyword("NOT") {
            let inner = self.unary()?;
            return Ok(Weighted::new(
                ConditionNode::Not(Box::new(inner.node)),
                inner.weight,
            ));
        }
        if matches!(self.peek(), Tok::Symbol("(")) {
            self.bump();
            let e = self.or_expr()?;
            self.expect_symbol(")")?;
            return self.weight_suffix(e);
        }
        if self.eat_keyword("EXISTS") {
            self.expect_symbol("(")?;
            let sub = self.query()?;
            self.expect_symbol(")")?;
            return self.weight_suffix(Weighted::unit(ConditionNode::Subquery {
                link: SubqueryLink::Exists,
                query: Box::new(sub),
            }));
        }
        if self.eat_keyword("CONNECT") {
            return self.connection();
        }
        // attr-led forms
        let attr = self.attr()?;
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let sub = self.query()?;
            self.expect_symbol(")")?;
            let inner = sub
                .projection
                .first()
                .cloned()
                .ok_or_else(|| self.err("IN subquery must project an attribute"))?;
            return self.weight_suffix(Weighted::unit(ConditionNode::Subquery {
                link: SubqueryLink::In { outer: attr, inner },
                query: Box::new(sub),
            }));
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.literal()?;
            self.expect_keyword("AND")?;
            let high = self.literal()?;
            return self.weight_suffix(Weighted::unit(ConditionNode::Predicate(Predicate::range(
                attr, low, high,
            ))));
        }
        if self.eat_keyword("AROUND") {
            let center = self.literal()?;
            self.expect_keyword("DEV")?;
            let dev = self.number()?;
            return self.weight_suffix(Weighted::unit(ConditionNode::Predicate(
                Predicate::around(attr, center, dev),
            )));
        }
        let op = match self.bump() {
            Tok::Symbol("=") => CompareOp::Eq,
            Tok::Symbol("<>") => CompareOp::Ne,
            Tok::Symbol("<") => CompareOp::Lt,
            Tok::Symbol("<=") => CompareOp::Le,
            Tok::Symbol(">") => CompareOp::Gt,
            Tok::Symbol(">=") => CompareOp::Ge,
            t => return Err(self.err(format!("expected comparison operator, found {t:?}"))),
        };
        let lit = self.literal()?;
        self.weight_suffix(Weighted::unit(ConditionNode::Predicate(
            Predicate::compare(attr, op, lit),
        )))
    }

    /// `CONNECT name ['(' params ')'] ON left ',' right`
    fn connection(&mut self) -> Result<Weighted> {
        let name = self.ident()?;
        let mut params = Vec::new();
        if matches!(self.peek(), Tok::Symbol("(")) {
            self.bump();
            if !matches!(self.peek(), Tok::Symbol(")")) {
                loop {
                    params.push(self.number()?);
                    if matches!(self.peek(), Tok::Symbol(",")) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect_symbol(")")?;
        }
        self.expect_keyword("ON")?;
        let left = self.ident()?;
        self.expect_symbol(",")?;
        let right = self.ident()?;
        let def = self.registry.lookup(&name, &left, &right)?.clone();
        let use_ = def.instantiate(params)?;
        self.weight_suffix(Weighted::unit(ConditionNode::Connection(use_)))
    }
}

/// Parse a query string against a connection registry.
pub fn parse_query(src: &str, registry: &ConnectionRegistry) -> Result<Query> {
    let mut p = Parser::new(src, registry)?;
    let q = p.query()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::{ConnectionDef, ConnectionKind};

    fn registry() -> ConnectionRegistry {
        let mut reg = ConnectionRegistry::new();
        reg.declare(ConnectionDef {
            name: "with-time-diff".into(),
            left_table: "Air-Pollution".into(),
            right_table: "Weather".into(),
            kind: ConnectionKind::TimeDiff {
                left: AttrRef::qualified("Air-Pollution", "DateTime"),
                right: AttrRef::qualified("Weather", "DateTime"),
            },
        });
        reg
    }

    #[test]
    fn parses_the_papers_example_query() {
        // §4.1: select temperature, solar radiation, humidity and ozone if
        // (T > 15 OR S > 600 OR H < 60) AND time-diff of 2 hours.
        let q = parse_query(
            "SELECT Temperature, Solar-Radiation, Humidity, Ozone \
             FROM Weather, Air-Pollution \
             WHERE (Temperature > 15 OR Solar-Radiation > 600 OR Humidity < 60) \
             AND CONNECT with-time-diff(7200) ON Air-Pollution, Weather",
            &registry(),
        )
        .unwrap();
        assert_eq!(q.tables, vec!["Weather", "Air-Pollution"]);
        assert_eq!(q.projection.len(), 4);
        let cond = q.condition.unwrap();
        match cond.node {
            ConditionNode::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(&parts[0].node, ConditionNode::Or(v) if v.len() == 3));
                assert!(
                    matches!(&parts[1].node, ConditionNode::Connection(u) if u.params == vec![7200.0])
                );
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn weight_suffix() {
        let q = parse_query(
            "SELECT * FROM T WHERE a > 1 WEIGHT 0.3 AND b < 2 WEIGHT 0.7",
            &registry(),
        )
        .unwrap();
        match q.condition.unwrap().node {
            ConditionNode::And(parts) => {
                assert_eq!(parts[0].weight, 0.3);
                assert_eq!(parts[1].weight, 0.7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_and_around() {
        let q = parse_query(
            "SELECT * FROM T WHERE a BETWEEN 1 AND 5 AND b AROUND 10 DEV 2",
            &registry(),
        )
        .unwrap();
        assert_eq!(q.condition.unwrap().node.leaf_count(), 2);
    }

    #[test]
    fn not_and_nested_parens() {
        let q = parse_query(
            "SELECT * FROM T WHERE NOT (a > 1 OR b < 2) AND c = 'x'",
            &registry(),
        )
        .unwrap();
        match q.condition.unwrap().node {
            ConditionNode::And(parts) => {
                assert!(matches!(parts[0].node, ConditionNode::Not(_)));
                assert!(matches!(parts[1].node, ConditionNode::Predicate(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exists_and_in_subqueries() {
        let q = parse_query(
            "SELECT * FROM T WHERE EXISTS (SELECT x FROM U WHERE x > 0) \
             AND id IN (SELECT ref FROM V)",
            &registry(),
        )
        .unwrap();
        match q.condition.unwrap().node {
            ConditionNode::And(parts) => {
                assert!(matches!(
                    parts[0].node,
                    ConditionNode::Subquery {
                        link: SubqueryLink::Exists,
                        ..
                    }
                ));
                assert!(matches!(
                    &parts[1].node,
                    ConditionNode::Subquery {
                        link: SubqueryLink::In { inner, .. },
                        ..
                    } if inner.column == "ref"
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hyphenated_identifiers_lex_correctly() {
        let q = parse_query(
            "SELECT Solar-Radiation FROM Weather WHERE Solar-Radiation > 600",
            &registry(),
        )
        .unwrap();
        assert_eq!(q.projection[0].column, "Solar-Radiation");
    }

    #[test]
    fn negative_literals() {
        let q = parse_query("SELECT * FROM T WHERE a > -5.5", &registry()).unwrap();
        match q.condition.unwrap().node {
            ConditionNode::Predicate(p) => match p.target {
                crate::ast::PredicateTarget::Compare { value, .. } => {
                    assert_eq!(value.as_f64(), Some(-5.5));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("SELECT FROM", &registry()).is_err());
        assert!(parse_query("SELECT * FROM T WHERE", &registry()).is_err());
        assert!(parse_query("SELECT * FROM T WHERE a >", &registry()).is_err());
        assert!(parse_query("SELECT * FROM T trailing", &registry()).is_err());
        assert!(parse_query("SELECT * FROM T WHERE CONNECT nope ON A, B", &registry()).is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_query("SELECT * FROM T WHERE a = 'oops", &registry()).is_err());
    }

    #[test]
    fn qualified_attributes() {
        let q = parse_query(
            "SELECT Weather.Temperature FROM Weather WHERE Weather.Temperature > 0",
            &registry(),
        )
        .unwrap();
        assert_eq!(q.projection[0].table.as_deref(), Some("Weather"));
    }
}
