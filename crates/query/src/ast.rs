//! The query AST.

use std::fmt;

use visdb_types::Value;

use crate::connection::ConnectionUse;

/// Reference to an attribute, optionally qualified by table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrRef {
    /// Table name; `None` means "resolve against the single source table
    /// or the unique table containing the column".
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl AttrRef {
    /// Unqualified reference.
    pub fn new(column: impl Into<String>) -> Self {
        AttrRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        AttrRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Comparison operators of the Tool Box (fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompareOp {
    /// The inverted operator, used for negation: §4.4 allows distances for
    /// `not (a1 op a2)` only "where the comparison operator may be
    /// inverted".
    pub fn inverted(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
        }
    }

    /// Exact boolean semantics given a three-way comparison result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// What a selection predicate compares the attribute against.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateTarget {
    /// `attr op literal` — the standard form.
    Compare {
        /// Comparison operator.
        op: CompareOp,
        /// Literal operand.
        value: Value,
    },
    /// `attr BETWEEN low AND high` — the two-handle slider (fig 4/5 shows
    /// `query range` with upper and lower limit).
    Range {
        /// Inclusive lower bound.
        low: Value,
        /// Inclusive upper bound.
        high: Value,
    },
    /// "medium value and some allowed deviation can be manipulated
    /// graphically" (§4.3, rightmost slider in fig 4).
    Around {
        /// Target value.
        center: Value,
        /// Allowed absolute deviation (distance 0 inside).
        deviation: f64,
    },
}

/// A selection predicate: one slider in the modification panel, one
/// visualization window (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The attribute the predicate restricts.
    pub attr: AttrRef,
    /// The comparison target.
    pub target: PredicateTarget,
}

impl Predicate {
    /// `attr op value` predicate.
    pub fn compare(attr: AttrRef, op: CompareOp, value: impl Into<Value>) -> Self {
        Predicate {
            attr,
            target: PredicateTarget::Compare {
                op,
                value: value.into(),
            },
        }
    }

    /// `attr BETWEEN low AND high` predicate.
    pub fn range(attr: AttrRef, low: impl Into<Value>, high: impl Into<Value>) -> Self {
        Predicate {
            attr,
            target: PredicateTarget::Range {
                low: low.into(),
                high: high.into(),
            },
        }
    }

    /// `attr ≈ center ± deviation` predicate.
    pub fn around(attr: AttrRef, center: impl Into<Value>, deviation: f64) -> Self {
        Predicate {
            attr,
            target: PredicateTarget::Around {
                center: center.into(),
                deviation,
            },
        }
    }

    /// A short label for window titles and slider captions.
    pub fn label(&self) -> String {
        match &self.target {
            PredicateTarget::Compare { op, value } => format!("{} {op} {value}", self.attr),
            PredicateTarget::Range { low, high } => {
                format!("{} in [{low}, {high}]", self.attr)
            }
            PredicateTarget::Around { center, deviation } => {
                format!("{} ~ {center} ± {deviation}", self.attr)
            }
        }
    }
}

/// How a subquery is linked to the outer query (§4.4).
#[derive(Debug, Clone, PartialEq)]
pub enum SubqueryLink {
    /// `EXISTS (subquery)` — fulfilled if any inner row (approximately)
    /// matches; the distance is the minimum over the approximate join.
    Exists,
    /// `outer_attr IN (subquery yielding inner_attr)`.
    In {
        /// Attribute of the outer relation.
        outer: AttrRef,
        /// Attribute of the inner relation the subquery projects.
        inner: AttrRef,
    },
}

/// A node of the condition tree together with its weighting factor
/// (§4.1: "weighting factors may be defined by selecting condition or
/// subquery boxes and assigning weighting factors to them").
#[derive(Debug, Clone, PartialEq)]
pub struct Weighted {
    /// The condition.
    pub node: ConditionNode,
    /// Relative importance, in `[0, 1]` by convention (§5.2).
    pub weight: f64,
}

impl Weighted {
    /// Wrap a node with weight 1.0 (the default importance).
    pub fn unit(node: ConditionNode) -> Self {
        Weighted { node, weight: 1.0 }
    }

    /// Wrap a node with an explicit weight.
    pub fn new(node: ConditionNode, weight: f64) -> Self {
        Weighted { node, weight }
    }
}

/// A node in the boolean condition tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionNode {
    /// A simple selection predicate (single box in fig 3).
    Predicate(Predicate),
    /// `AND` of weighted children.
    And(Vec<Weighted>),
    /// `OR` of weighted children.
    Or(Vec<Weighted>),
    /// Negation. Only invertible comparisons yield distances (§4.4).
    Not(Box<ConditionNode>),
    /// A named join condition between two tables (double-lined boxes in
    /// fig 3 are subqueries; connections are the labelled edges).
    Connection(ConnectionUse),
    /// A nested subquery (double box in fig 3).
    Subquery {
        /// How the subquery attaches to the outer query.
        link: SubqueryLink,
        /// The inner query.
        query: Box<Query>,
    },
}

impl ConditionNode {
    /// Number of *top-level* selection predicates — the paper generates
    /// "a separate window for each selection predicate of the query" (§3),
    /// where the top level of an `AND`/`OR` counts each direct child once.
    pub fn top_level_arity(&self) -> usize {
        match self {
            ConditionNode::And(cs) | ConditionNode::Or(cs) => cs.len(),
            _ => 1,
        }
    }

    /// Total number of leaf predicates/connections/subqueries in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            ConditionNode::And(cs) | ConditionNode::Or(cs) => {
                cs.iter().map(|w| w.node.leaf_count()).sum()
            }
            ConditionNode::Not(inner) => inner.leaf_count(),
            _ => 1,
        }
    }

    /// Depth of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            ConditionNode::And(cs) | ConditionNode::Or(cs) => {
                1 + cs.iter().map(|w| w.node.depth()).max().unwrap_or(0)
            }
            ConditionNode::Not(inner) => 1 + inner.depth(),
            _ => 1,
        }
    }

    /// Visit every node (pre-order). Used by validation and by the session
    /// drill-down navigation (double-clicking a boolean operator box opens
    /// a window for that subtree, §4.4).
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a ConditionNode)) {
        f(self);
        match self {
            ConditionNode::And(cs) | ConditionNode::Or(cs) => {
                for w in cs {
                    w.node.visit(f);
                }
            }
            ConditionNode::Not(inner) => inner.visit(f),
            _ => {}
        }
    }

    /// Navigate to a subtree by child-index path (empty path = self).
    pub fn descend(&self, path: &[usize]) -> Option<&ConditionNode> {
        let mut cur = self;
        for &i in path {
            cur = match cur {
                ConditionNode::And(cs) | ConditionNode::Or(cs) => &cs.get(i)?.node,
                ConditionNode::Not(inner) if i == 0 => inner,
                _ => return None,
            };
        }
        Some(cur)
    }
}

/// A complete query: tables, projection, condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Source tables (fig 3: `from Weather, Air-Pollution`).
    pub tables: Vec<String>,
    /// Projected attributes (the Result List). Empty means "all".
    pub projection: Vec<AttrRef>,
    /// The weighted condition tree. `None` means "no condition" — every
    /// row is an exact answer.
    pub condition: Option<Weighted>,
}

impl Query {
    /// A query over tables with no condition and full projection.
    pub fn scan(tables: Vec<String>) -> Self {
        Query {
            tables,
            projection: Vec::new(),
            condition: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(name: &str) -> ConditionNode {
        ConditionNode::Predicate(Predicate::compare(
            AttrRef::new(name),
            CompareOp::Gt,
            Value::Float(1.0),
        ))
    }

    #[test]
    fn operator_inversion_round_trips() {
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            assert_eq!(op.inverted().inverted(), op);
        }
    }

    #[test]
    fn operator_eval_semantics() {
        use std::cmp::Ordering::*;
        assert!(CompareOp::Le.eval(Equal));
        assert!(CompareOp::Le.eval(Less));
        assert!(!CompareOp::Le.eval(Greater));
        assert!(CompareOp::Ne.eval(Greater));
        // inverted op is the logical complement on every ordering
        for op in [CompareOp::Eq, CompareOp::Lt, CompareOp::Ge] {
            for ord in [Less, Equal, Greater] {
                assert_eq!(op.eval(ord), !op.inverted().eval(ord));
            }
        }
    }

    #[test]
    fn tree_metrics() {
        let tree = ConditionNode::And(vec![
            Weighted::unit(ConditionNode::Or(vec![
                Weighted::unit(pred("a")),
                Weighted::unit(pred("b")),
                Weighted::unit(pred("c")),
            ])),
            Weighted::unit(pred("d")),
        ]);
        assert_eq!(tree.top_level_arity(), 2);
        assert_eq!(tree.leaf_count(), 4);
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn descend_navigates_paths() {
        let or = ConditionNode::Or(vec![Weighted::unit(pred("a")), Weighted::unit(pred("b"))]);
        let tree = ConditionNode::And(vec![Weighted::unit(or), Weighted::unit(pred("d"))]);
        assert!(matches!(
            tree.descend(&[0]),
            Some(ConditionNode::Or(cs)) if cs.len() == 2
        ));
        assert!(matches!(
            tree.descend(&[0, 1]),
            Some(ConditionNode::Predicate(p)) if p.attr.column == "b"
        ));
        assert!(tree.descend(&[5]).is_none());
        assert!(tree.descend(&[]).is_some());
    }

    #[test]
    fn visit_covers_all_nodes() {
        let tree = ConditionNode::Not(Box::new(pred("a")));
        let mut n = 0;
        tree.visit(&mut |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn predicate_labels() {
        let p = Predicate::compare(AttrRef::new("Temperature"), CompareOp::Gt, 15.0);
        assert_eq!(p.label(), "Temperature > 15");
        let p = Predicate::around(AttrRef::new("Humidity"), 50.0, 10.0);
        assert_eq!(p.label(), "Humidity ~ 50 ± 10");
    }
}
