//! # visdb-query
//!
//! The VisDB query model (§4.1, §4.4 of the paper).
//!
//! A query is a set of tables, a projection list, and a *condition tree* of
//! arbitrarily nested `AND`/`OR` combinations of
//!
//! * **selection predicates** — `attr op literal`, ranges, and the
//!   "medium value ± allowed deviation" slider form,
//! * **connections** — joins that "are defined and named by the database
//!   designer prior to their actual use", possibly parameterised
//!   (`with-time-diff(120)`, `at-same-location`, `with-distance(m)`),
//! * **subqueries** — `EXISTS` / `IN` linked through an approximate join,
//! * **negation** — which only yields distances for invertible comparison
//!   operators (§4.4: otherwise "no coloring is possible").
//!
//! Every node carries a *weighting factor* expressing its relative
//! importance (§5.2). Three front-ends construct the AST:
//! [`builder::QueryBuilder`] (the GRADI analog), [`parser`] (a mini SQL
//! dialect), and direct construction.

pub mod ast;
pub mod builder;
pub mod connection;
pub mod parser;
pub mod printer;
pub mod validate;

pub use ast::{
    AttrRef, CompareOp, ConditionNode, Predicate, PredicateTarget, Query, SubqueryLink, Weighted,
};
pub use builder::QueryBuilder;
pub use connection::{ConnectionDef, ConnectionKind, ConnectionRegistry, ConnectionUse};
pub use parser::parse_query;
pub use validate::validate;
