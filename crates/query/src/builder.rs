//! A fluent query builder — the programmatic analog of GRADI's
//! incremental, mouse-driven query specification (§4.1): "we allow the
//! user to specify all parts of the query independently and to combine
//! them at a later stage".

use visdb_types::Value;

use crate::ast::{AttrRef, CompareOp, ConditionNode, Predicate, Query, SubqueryLink, Weighted};
use crate::connection::ConnectionUse;

/// Fluent builder for [`Query`].
///
/// ```
/// use visdb_query::{QueryBuilder, CompareOp};
///
/// let q = QueryBuilder::from_tables(["Weather"])
///     .select(["Temperature", "Humidity"])
///     .cmp("Temperature", CompareOp::Gt, 15.0)
///     .cmp("Humidity", CompareOp::Lt, 60.0)
///     .all() // AND them
///     .build();
/// assert_eq!(q.tables, vec!["Weather"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    tables: Vec<String>,
    projection: Vec<AttrRef>,
    /// Parts specified so far but not yet combined.
    parts: Vec<Weighted>,
}

impl QueryBuilder {
    /// Start from a set of tables.
    pub fn from_tables<I, S>(tables: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        QueryBuilder {
            tables: tables.into_iter().map(Into::into).collect(),
            ..Default::default()
        }
    }

    /// Add attributes to the result list.
    pub fn select<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.projection
            .extend(attrs.into_iter().map(|a| AttrRef::new(a)));
        self
    }

    /// Add an independent condition part (weight 1).
    pub fn part(mut self, node: ConditionNode) -> Self {
        self.parts.push(Weighted::unit(node));
        self
    }

    /// Add an independent condition part with a weight.
    pub fn weighted_part(mut self, node: ConditionNode, weight: f64) -> Self {
        self.parts.push(Weighted::new(node, weight));
        self
    }

    /// Shorthand: add an `attr op value` predicate part.
    pub fn cmp(self, attr: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        self.part(ConditionNode::Predicate(Predicate::compare(
            AttrRef::new(attr),
            op,
            value,
        )))
    }

    /// Shorthand: add a weighted `attr op value` predicate part.
    pub fn cmp_weighted(
        self,
        attr: impl Into<String>,
        op: CompareOp,
        value: impl Into<Value>,
        weight: f64,
    ) -> Self {
        self.weighted_part(
            ConditionNode::Predicate(Predicate::compare(AttrRef::new(attr), op, value)),
            weight,
        )
    }

    /// Shorthand: add a range predicate part.
    pub fn between(
        self,
        attr: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Self {
        self.part(ConditionNode::Predicate(Predicate::range(
            AttrRef::new(attr),
            low,
            high,
        )))
    }

    /// Shorthand: add an `attr ≈ center ± deviation` predicate part.
    pub fn around(self, attr: impl Into<String>, center: impl Into<Value>, deviation: f64) -> Self {
        self.part(ConditionNode::Predicate(Predicate::around(
            AttrRef::new(attr),
            center,
            deviation,
        )))
    }

    /// Add a connection (approximate join) part.
    pub fn connect(self, conn: ConnectionUse) -> Self {
        self.part(ConditionNode::Connection(conn))
    }

    /// Add an `EXISTS (subquery)` part.
    pub fn exists(self, sub: Query) -> Self {
        self.part(ConditionNode::Subquery {
            link: SubqueryLink::Exists,
            query: Box::new(sub),
        })
    }

    /// Add an `outer IN (subquery → inner)` part.
    pub fn is_in(self, outer: impl Into<String>, inner: impl Into<String>, sub: Query) -> Self {
        self.part(ConditionNode::Subquery {
            link: SubqueryLink::In {
                outer: AttrRef::new(outer),
                inner: AttrRef::new(inner),
            },
            query: Box::new(sub),
        })
    }

    /// Negate the most recently added part.
    pub fn negate_last(mut self) -> Self {
        if let Some(w) = self.parts.pop() {
            self.parts.push(Weighted::new(
                ConditionNode::Not(Box::new(w.node)),
                w.weight,
            ));
        }
        self
    }

    /// Combine all accumulated parts with `AND` into a single part.
    /// With zero parts this is a no-op; a single part stays as-is.
    pub fn all(mut self) -> Self {
        if self.parts.len() > 1 {
            let parts = std::mem::take(&mut self.parts);
            self.parts.push(Weighted::unit(ConditionNode::And(parts)));
        }
        self
    }

    /// Combine all accumulated parts with `OR` into a single part.
    pub fn any(mut self) -> Self {
        if self.parts.len() > 1 {
            let parts = std::mem::take(&mut self.parts);
            self.parts.push(Weighted::unit(ConditionNode::Or(parts)));
        }
        self
    }

    /// Finish. Multiple remaining parts are implicitly `AND`-combined
    /// (matching fig 3, where the top-level operator of the example query
    /// is `AND`).
    pub fn build(mut self) -> Query {
        self = self.all();
        Query {
            tables: self.tables,
            projection: self.projection,
            condition: self.parts.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_nesting() {
        // The paper's running example: (T > 15 OR S > 600 OR H < 60) AND conn
        let q = QueryBuilder::from_tables(["Weather", "Air-Pollution"])
            .select(["Temperature", "Solar-Radiation", "Humidity", "Ozone"])
            .cmp("Temperature", CompareOp::Gt, 15.0)
            .cmp("Solar-Radiation", CompareOp::Gt, 600.0)
            .cmp("Humidity", CompareOp::Lt, 60.0)
            .any()
            .between("Ozone", 0.0, 300.0)
            .build();
        let cond = q.condition.unwrap();
        match &cond.node {
            ConditionNode::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0].node, ConditionNode::Or(ref v) if v.len() == 3));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn single_part_is_not_wrapped() {
        let q = QueryBuilder::from_tables(["T"])
            .cmp("a", CompareOp::Eq, 1)
            .build();
        assert!(matches!(
            q.condition.unwrap().node,
            ConditionNode::Predicate(_)
        ));
    }

    #[test]
    fn empty_condition() {
        let q = QueryBuilder::from_tables(["T"]).build();
        assert!(q.condition.is_none());
    }

    #[test]
    fn weights_are_preserved() {
        let q = QueryBuilder::from_tables(["T"])
            .cmp_weighted("a", CompareOp::Gt, 1.0, 0.25)
            .cmp_weighted("b", CompareOp::Lt, 2.0, 0.75)
            .build();
        match q.condition.unwrap().node {
            ConditionNode::And(parts) => {
                assert_eq!(parts[0].weight, 0.25);
                assert_eq!(parts[1].weight, 0.75);
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn negate_last_wraps_in_not() {
        let q = QueryBuilder::from_tables(["T"])
            .cmp("a", CompareOp::Gt, 1.0)
            .negate_last()
            .build();
        assert!(matches!(q.condition.unwrap().node, ConditionNode::Not(_)));
    }

    #[test]
    fn subquery_parts() {
        let inner = QueryBuilder::from_tables(["U"])
            .cmp("x", CompareOp::Gt, 0.0)
            .build();
        let q = QueryBuilder::from_tables(["T"]).exists(inner).build();
        assert!(matches!(
            q.condition.unwrap().node,
            ConditionNode::Subquery {
                link: SubqueryLink::Exists,
                ..
            }
        ));
    }
}
