//! Textual rendering of the Query Representation window (fig 3).
//!
//! "In the Query Representation window the query is displayed graphically.
//! Each part of the query is represented by a small box, simple conditions
//! by a single, subqueries by a double box, and the connecting lines are
//! labeled with the type of connection used." (§4.1)
//!
//! We render the same structure as an indented ASCII tree: `[cond]` for
//! simple conditions, `[[subquery]]` for subqueries, operator nodes for
//! `AND`/`OR`/`NOT`, and connection labels on their own boxes.

use std::fmt::Write as _;

use crate::ast::{ConditionNode, Query, SubqueryLink, Weighted};

/// Render a full query as the ASCII query-representation tree.
pub fn render_query(q: &Query) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Result List: {}", render_projection(q));
    let _ = writeln!(out, "from {}", q.tables.join(", "));
    match &q.condition {
        Some(w) => render_node(&w.node, w.weight, 0, &mut out),
        None => out.push_str("(no condition)\n"),
    }
    out
}

fn render_projection(q: &Query) -> String {
    if q.projection.is_empty() {
        "*".to_string()
    } else {
        q.projection
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn weight_suffix(weight: f64) -> String {
    if (weight - 1.0).abs() < f64::EPSILON {
        String::new()
    } else {
        format!(" (weight {weight})")
    }
}

fn render_node(node: &ConditionNode, weight: f64, depth: usize, out: &mut String) {
    indent(depth, out);
    match node {
        ConditionNode::Predicate(p) => {
            let _ = writeln!(out, "[{}]{}", p.label(), weight_suffix(weight));
        }
        ConditionNode::Connection(c) => {
            let _ = writeln!(out, "[{}]{}", c.label(), weight_suffix(weight));
        }
        ConditionNode::And(children) => {
            let _ = writeln!(out, "AND{}", weight_suffix(weight));
            render_children(children, depth + 1, out);
        }
        ConditionNode::Or(children) => {
            let _ = writeln!(out, "OR{}", weight_suffix(weight));
            render_children(children, depth + 1, out);
        }
        ConditionNode::Not(inner) => {
            let _ = writeln!(out, "NOT{}", weight_suffix(weight));
            render_node(inner, 1.0, depth + 1, out);
        }
        ConditionNode::Subquery { link, query } => {
            let head = match link {
                SubqueryLink::Exists => "[[EXISTS]]".to_string(),
                SubqueryLink::In { outer, inner } => {
                    format!("[[{outer} IN ... -> {inner}]]")
                }
            };
            let _ = writeln!(out, "{head}{}", weight_suffix(weight));
            // the inner query, indented one level
            for line in render_query(query).lines() {
                indent(depth + 1, out);
                out.push_str(line);
                out.push('\n');
            }
        }
    }
}

fn render_children(children: &[Weighted], depth: usize, out: &mut String) {
    for w in children {
        render_node(&w.node, w.weight, depth, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompareOp;
    use crate::builder::QueryBuilder;

    #[test]
    fn renders_the_example_query_shape() {
        let q = QueryBuilder::from_tables(["Weather", "Air-Pollution"])
            .select(["Temperature", "Ozone"])
            .cmp("Temperature", CompareOp::Gt, 15.0)
            .cmp("Solar-Radiation", CompareOp::Gt, 600.0)
            .cmp("Humidity", CompareOp::Lt, 60.0)
            .any()
            .between("Ozone", 0.0, 300.0)
            .build();
        let s = render_query(&q);
        assert!(s.contains("Result List: Temperature, Ozone"));
        assert!(s.contains("from Weather, Air-Pollution"));
        assert!(s.contains("AND"));
        assert!(s.contains("OR"));
        assert!(s.contains("[Temperature > 15]"));
        // OR children are indented two levels under AND
        assert!(s.contains("    [Humidity < 60]"));
    }

    #[test]
    fn weights_are_shown_when_not_unit() {
        let q = QueryBuilder::from_tables(["T"])
            .cmp_weighted("a", CompareOp::Gt, 1.0, 0.25)
            .cmp("b", CompareOp::Lt, 2.0)
            .build();
        let s = render_query(&q);
        assert!(s.contains("(weight 0.25)"));
        assert!(!s.contains("[b < 2] (weight"));
    }

    #[test]
    fn subqueries_use_double_boxes() {
        let inner = QueryBuilder::from_tables(["U"])
            .select(["x"])
            .cmp("x", CompareOp::Gt, 0.0)
            .build();
        let q = QueryBuilder::from_tables(["T"]).exists(inner).build();
        let s = render_query(&q);
        assert!(s.contains("[[EXISTS]]"));
        assert!(s.contains("from U"));
    }

    #[test]
    fn no_condition_renders_placeholder() {
        let q = QueryBuilder::from_tables(["T"]).build();
        assert!(render_query(&q).contains("(no condition)"));
    }
}
