//! Query validation against a database catalog.
//!
//! Checks, before any distance evaluation starts:
//! * all referenced tables exist,
//! * all attributes resolve to a unique column of a selected table,
//! * predicate literals are type-compatible with their columns,
//! * weights are finite and non-negative,
//! * boolean operators have at least one child,
//! * connection tables are among (or joinable with) the query tables.

use visdb_storage::Database;
use visdb_types::{DataType, Error, Result};

use crate::ast::{AttrRef, ConditionNode, PredicateTarget, Query, Weighted};

/// Resolve an attribute reference to `(table, column index, datatype)`.
pub fn resolve_attr<'a>(
    db: &'a Database,
    tables: &[String],
    attr: &AttrRef,
) -> Result<(&'a str, usize, DataType)> {
    match &attr.table {
        Some(t) => {
            if !tables.iter().any(|x| x == t) {
                return Err(Error::invalid_query(format!(
                    "attribute '{attr}' references table '{t}' which is not in the FROM list"
                )));
            }
            let table = db.table(t)?;
            let id = table.schema().require(t, &attr.column)?;
            Ok((
                table.name(),
                id,
                table.schema().column(id).expect("resolved").data_type,
            ))
        }
        None => {
            let mut found: Option<(&str, usize, DataType)> = None;
            for t in tables {
                let table = db.table(t)?;
                if let Some(id) = table.schema().index_of(&attr.column) {
                    if found.is_some() {
                        return Err(Error::invalid_query(format!(
                            "attribute '{}' is ambiguous across tables",
                            attr.column
                        )));
                    }
                    found = Some((
                        table.name(),
                        id,
                        table.schema().column(id).expect("resolved").data_type,
                    ));
                }
            }
            found.ok_or_else(|| Error::UnknownColumn {
                table: tables.join(","),
                column: attr.column.clone(),
            })
        }
    }
}

/// Validate a query against the database. Returns `Ok(())` or the first
/// problem found.
pub fn validate(db: &Database, query: &Query) -> Result<()> {
    if query.tables.is_empty() {
        return Err(Error::invalid_query(
            "query must reference at least one table",
        ));
    }
    for t in &query.tables {
        db.table(t)?;
    }
    for p in &query.projection {
        resolve_attr(db, &query.tables, p)?;
    }
    if let Some(w) = &query.condition {
        validate_node(db, &query.tables, w)?;
    }
    Ok(())
}

fn validate_weight(weight: f64) -> Result<()> {
    if !weight.is_finite() || weight < 0.0 {
        return Err(Error::invalid_parameter(
            "weight",
            format!("must be finite and >= 0, got {weight}"),
        ));
    }
    Ok(())
}

fn validate_node(db: &Database, tables: &[String], w: &Weighted) -> Result<()> {
    validate_weight(w.weight)?;
    match &w.node {
        ConditionNode::Predicate(p) => {
            let (_, _, dt) = resolve_attr(db, tables, &p.attr)?;
            match &p.target {
                PredicateTarget::Compare { value, .. } => {
                    if !value.is_null() && !dt.is_compatible(value.data_type()) {
                        return Err(Error::TypeMismatch {
                            expected: dt.to_string(),
                            found: value.data_type().to_string(),
                        });
                    }
                }
                PredicateTarget::Range { low, high } => {
                    for v in [low, high] {
                        if !v.is_null() && !dt.is_compatible(v.data_type()) {
                            return Err(Error::TypeMismatch {
                                expected: dt.to_string(),
                                found: v.data_type().to_string(),
                            });
                        }
                    }
                    if let Some(ord) = low.partial_cmp_value(high) {
                        if ord == std::cmp::Ordering::Greater {
                            return Err(Error::invalid_query(format!(
                                "range low {low} exceeds high {high}"
                            )));
                        }
                    }
                }
                PredicateTarget::Around { center, deviation } => {
                    if !dt.is_numeric() {
                        return Err(Error::invalid_query(format!(
                            "AROUND requires a numeric attribute, '{}' is {dt}",
                            p.attr
                        )));
                    }
                    if center.as_f64().is_none() {
                        return Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: center.data_type().to_string(),
                        });
                    }
                    if !deviation.is_finite() || *deviation < 0.0 {
                        return Err(Error::invalid_parameter(
                            "deviation",
                            "must be finite and >= 0",
                        ));
                    }
                }
            }
            Ok(())
        }
        ConditionNode::And(children) | ConditionNode::Or(children) => {
            if children.is_empty() {
                return Err(Error::invalid_query("boolean operator with no children"));
            }
            for c in children {
                validate_node(db, tables, c)?;
            }
            Ok(())
        }
        ConditionNode::Not(inner) => validate_node(db, tables, &Weighted::unit((**inner).clone())),
        ConditionNode::Connection(u) => {
            // both endpoints must resolve (against their declared tables)
            let (l, r) = u.def.kind.attrs();
            let l_tables = vec![u.def.left_table.clone()];
            let r_tables = vec![u.def.right_table.clone()];
            resolve_attr(db, &l_tables, l)?;
            resolve_attr(db, &r_tables, r)?;
            // and the joined tables must participate in the query
            for t in [&u.def.left_table, &u.def.right_table] {
                if !tables.iter().any(|x| x == t) {
                    return Err(Error::invalid_query(format!(
                        "connection '{}' joins table '{t}' which is not in the FROM list",
                        u.def.name
                    )));
                }
            }
            Ok(())
        }
        ConditionNode::Subquery { query, .. } => validate(db, query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompareOp;
    use crate::builder::QueryBuilder;
    use crate::connection::{ConnectionDef, ConnectionKind};
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, Value};

    fn db() -> Database {
        let mut db = Database::new("env");
        db.add_table(
            TableBuilder::new(
                "Weather",
                vec![
                    Column::new("DateTime", DataType::Timestamp),
                    Column::new("Temperature", DataType::Float),
                    Column::new("Humidity", DataType::Float),
                ],
            )
            .row(vec![
                Value::Timestamp(0),
                Value::Float(15.0),
                Value::Float(50.0),
            ])
            .unwrap()
            .build(),
        );
        db.add_table(
            TableBuilder::new(
                "Air-Pollution",
                vec![
                    Column::new("DateTime", DataType::Timestamp),
                    Column::new("Ozone", DataType::Float),
                ],
            )
            .row(vec![Value::Timestamp(0), Value::Float(30.0)])
            .unwrap()
            .build(),
        );
        db
    }

    #[test]
    fn valid_query_passes() {
        let q = QueryBuilder::from_tables(["Weather"])
            .select(["Temperature"])
            .cmp("Temperature", CompareOp::Gt, 15.0)
            .build();
        assert!(validate(&db(), &q).is_ok());
    }

    #[test]
    fn unknown_table_and_column_fail() {
        let q = QueryBuilder::from_tables(["Nope"]).build();
        assert!(validate(&db(), &q).is_err());
        let q = QueryBuilder::from_tables(["Weather"])
            .cmp("Nope", CompareOp::Gt, 1.0)
            .build();
        assert!(validate(&db(), &q).is_err());
    }

    #[test]
    fn ambiguous_attribute_fails() {
        let q = QueryBuilder::from_tables(["Weather", "Air-Pollution"])
            .cmp("DateTime", CompareOp::Gt, 0)
            .build();
        let err = validate(&db(), &q).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn qualified_attribute_disambiguates() {
        let q = QueryBuilder::from_tables(["Weather", "Air-Pollution"])
            .part(ConditionNode::Predicate(crate::ast::Predicate::compare(
                AttrRef::qualified("Weather", "DateTime"),
                CompareOp::Gt,
                Value::Timestamp(0),
            )))
            .build();
        assert!(validate(&db(), &q).is_ok());
    }

    #[test]
    fn type_mismatch_fails() {
        let q = QueryBuilder::from_tables(["Weather"])
            .cmp("Temperature", CompareOp::Eq, "warm")
            .build();
        assert!(matches!(
            validate(&db(), &q),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn inverted_range_fails() {
        let q = QueryBuilder::from_tables(["Weather"])
            .between("Temperature", 30.0, 10.0)
            .build();
        assert!(validate(&db(), &q).is_err());
    }

    #[test]
    fn bad_weight_fails() {
        let q = QueryBuilder::from_tables(["Weather"])
            .cmp_weighted("Temperature", CompareOp::Gt, 1.0, -0.5)
            .build();
        assert!(validate(&db(), &q).is_err());
        let q = QueryBuilder::from_tables(["Weather"])
            .cmp_weighted("Temperature", CompareOp::Gt, 1.0, f64::NAN)
            .build();
        assert!(validate(&db(), &q).is_err());
    }

    #[test]
    fn connection_tables_must_be_in_from_list() {
        let def = ConnectionDef {
            name: "same-time".into(),
            left_table: "Air-Pollution".into(),
            right_table: "Weather".into(),
            kind: ConnectionKind::Equi {
                left: AttrRef::qualified("Air-Pollution", "DateTime"),
                right: AttrRef::qualified("Weather", "DateTime"),
            },
        };
        let u = def.instantiate(vec![]).unwrap();
        let q = QueryBuilder::from_tables(["Weather"])
            .connect(u.clone())
            .build();
        assert!(validate(&db(), &q).is_err());
        let q = QueryBuilder::from_tables(["Weather", "Air-Pollution"])
            .connect(u)
            .build();
        assert!(validate(&db(), &q).is_ok());
    }

    #[test]
    fn around_requires_numeric() {
        let mut database = db();
        database.add_table(
            TableBuilder::new("S", vec![Column::new("name", DataType::Str)])
                .row(vec![Value::from("a")])
                .unwrap()
                .build(),
        );
        let q = QueryBuilder::from_tables(["S"])
            .around("name", 1.0, 1.0)
            .build();
        assert!(validate(&database, &q).is_err());
    }

    #[test]
    fn subqueries_validate_recursively() {
        let inner = QueryBuilder::from_tables(["NoSuchTable"]).build();
        let q = QueryBuilder::from_tables(["Weather"]).exists(inner).build();
        assert!(validate(&db(), &q).is_err());
    }

    #[test]
    fn empty_boolean_operator_fails() {
        let q = Query {
            tables: vec!["Weather".into()],
            projection: vec![],
            condition: Some(Weighted::unit(ConditionNode::And(vec![]))),
        };
        assert!(validate(&db(), &q).is_err());
    }
}
