//! Cooperative cancellation: a cheap, shareable [`CancelToken`] that a
//! query carries from service dispatch down into the chunk walks.
//!
//! The token is deliberately tiny: one `AtomicU8` plus an optional
//! deadline. The hot-path question — "should this walk stop?" — is a
//! single relaxed load when no deadline is set, and one additional
//! monotonic clock read per poll when one is. Walks poll once per
//! 16k-row chunk (~100 µs of work), so polling cost is three to four
//! orders of magnitude below the work it guards.
//!
//! Interruption is **latched**: once a token observes its deadline has
//! passed it stores [`Interrupt::DeadlineExceeded`] so every later poll
//! (and the final error mapping) agrees on the same cause without
//! re-reading the clock. A caller-triggered [`CancelToken::cancel`]
//! wins only if it lands before the deadline latch — whichever cause is
//! observed first is the cause reported.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::{self, Phase};

/// Why a query was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The caller (or a `cancel` server op) abandoned the query.
    Cancelled,
    /// The query's deadline expired.
    DeadlineExceeded,
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    /// `LIVE` / `CANCELLED` / `DEADLINE`; transitions are one-way.
    state: AtomicU8,
    /// Absolute deadline, checked lazily on poll.
    deadline: Option<Instant>,
}

/// A cheap, cloneable cancellation handle (deadline- or
/// caller-triggered). Clones share state: cancelling any clone
/// interrupts every holder.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only trips when [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
            }),
        }
    }

    /// A token that trips once `timeout` has elapsed (or earlier, if
    /// cancelled).
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Trip the token. Idempotent; loses to an already-latched deadline
    /// (the first observed cause sticks).
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Why (if at all) this token has tripped. One relaxed load on the
    /// live path; a clock read only when a deadline is set.
    #[inline]
    pub fn interrupted(&self) -> Option<Interrupt> {
        match self.inner.state.load(Ordering::Relaxed) {
            CANCELLED => Some(Interrupt::Cancelled),
            DEADLINE => Some(Interrupt::DeadlineExceeded),
            _ => match self.inner.deadline {
                Some(d) if Instant::now() >= d => {
                    let _ = self.inner.state.compare_exchange(
                        LIVE,
                        DEADLINE,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                    // re-read: a racing cancel() may have latched first
                    match self.inner.state.load(Ordering::Relaxed) {
                        CANCELLED => Some(Interrupt::Cancelled),
                        _ => Some(Interrupt::DeadlineExceeded),
                    }
                }
                _ => None,
            },
        }
    }

    /// The per-chunk poll: runs any armed fault injection for `phase`,
    /// then reports whether the walk should stop. Chunk closures call
    /// this once per 16k-row chunk and fast-drain (skip the chunk body)
    /// when it returns `true`.
    #[inline]
    pub fn should_stop(&self, phase: Phase) -> bool {
        fault::check(phase, self);
        self.interrupted().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert_eq!(t.interrupted(), None);
        assert!(!t.should_stop(Phase::Distance));
    }

    #[test]
    fn cancel_latches_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.interrupted(), Some(Interrupt::Cancelled));
        assert_eq!(c.interrupted(), Some(Interrupt::Cancelled));
        // idempotent
        t.cancel();
        assert_eq!(t.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_trips_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.interrupted(), Some(Interrupt::DeadlineExceeded));
        // a later cancel cannot rewrite the latched cause
        t.cancel();
        assert_eq!(t.interrupted(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn cancel_beats_unexpired_deadline() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.interrupted(), None);
        t.cancel();
        assert_eq!(t.interrupted(), Some(Interrupt::Cancelled));
    }
}
