//! Fault injection for robustness tests: arm a panic, a per-chunk
//! delay, or a forced cancellation at a chosen pipeline phase and the
//! next walk that polls its [`CancelToken`](crate::CancelToken) there
//! triggers it.
//!
//! The production hot path pays **one relaxed atomic load** per poll
//! while nothing is armed ([`check`] bails on `ARMED` before touching
//! the plan mutex), so the hook can stay compiled into release builds —
//! which is exactly what the fault suite exercises.
//!
//! Injection is process-global, so [`inject`] hands back a
//! [`FaultGuard`] that holds a global injection lock: concurrent fault
//! tests serialize instead of trampling each other's plans, and
//! dropping the guard disarms and clears the plan even if the test
//! panics (as the `Panic` fault makes it do on purpose).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::CancelToken;

/// The pipeline phases at which faults can be injected — the four
/// phases of the relevance pipeline (shared by both execution modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Distance evaluation chunk walks.
    Distance,
    /// Normalization fit.
    Fit,
    /// Normalize + combine walks.
    NormalizeCombine,
    /// Ranking / top-k selection.
    Rank,
}

/// What to do when the armed phase is polled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic (once, then disarm) — exercises panic containment.
    Panic,
    /// Sleep this long on **every** poll of the phase — slow chunks for
    /// deadline and shedding tests.
    Delay(Duration),
    /// Trip the polling token (once, then disarm) — a forced
    /// mid-pipeline cancellation.
    Cancel,
}

struct Plan {
    phase: Phase,
    action: FaultAction,
    /// Polls of `phase` to let pass before triggering.
    skip: usize,
    hits: usize,
}

/// One-load gate for the untriggered hot path.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Total faults actually triggered (tests assert the injection fired).
static TRIGGERED: AtomicU64 = AtomicU64::new(0);

fn plan() -> &'static Mutex<Option<Plan>> {
    static PLAN: OnceLock<Mutex<Option<Plan>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(None))
}

fn injection_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Poison-tolerant lock: a `Panic` fault unwinds through test code
/// that may hold these mutexes; the data (a plan, or unit) is always
/// consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Clears and disarms the active fault plan when dropped, and releases
/// the global injection lock so the next test can arm its own.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock(plan()) = None;
    }
}

/// Arm `action` to trigger on the first poll of `phase`.
pub fn inject(phase: Phase, action: FaultAction) -> FaultGuard {
    inject_after(phase, action, 0)
}

/// Arm `action` to trigger on the `(skip + 1)`-th poll of `phase` —
/// lets tests hit a mid-walk chunk rather than the first one.
pub fn inject_after(phase: Phase, action: FaultAction, skip: usize) -> FaultGuard {
    let serial = lock(injection_lock());
    *lock(plan()) = Some(Plan {
        phase,
        action,
        skip,
        hits: 0,
    });
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _serial: serial }
}

/// How many injected faults have actually fired (process lifetime).
pub fn triggered() -> u64 {
    TRIGGERED.load(Ordering::Relaxed)
}

/// The poll-site hook: a no-op unless a fault is armed for `phase`.
/// Called (via [`CancelToken::should_stop`](crate::CancelToken::should_stop)
/// and the pipeline's phase checkpoints) once per chunk / phase
/// boundary.
#[inline]
pub fn check(phase: Phase, token: &CancelToken) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    check_slow(phase, token);
}

#[cold]
fn check_slow(phase: Phase, token: &CancelToken) {
    let action = {
        let mut guard = lock(plan());
        let Some(p) = guard.as_mut() else { return };
        if p.phase != phase {
            return;
        }
        p.hits += 1;
        if p.hits <= p.skip {
            return;
        }
        let action = p.action;
        // one-shot actions disarm so the panic/cancel fires exactly
        // once; delays keep applying to every chunk of the phase
        if !matches!(action, FaultAction::Delay(_)) {
            *guard = None;
            ARMED.store(false, Ordering::SeqCst);
        }
        action
        // the plan lock drops here, before we act: panicking while
        // holding it would poison it for every later test
    };
    TRIGGERED.fetch_add(1, Ordering::Relaxed);
    match action {
        FaultAction::Panic => panic!("injected fault: panic at {phase:?}"),
        FaultAction::Delay(d) => std::thread::sleep(d),
        FaultAction::Cancel => token.cancel(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn disarmed_check_is_a_no_op() {
        let _serial = lock(injection_lock());
        let t = CancelToken::new();
        check(Phase::Distance, &t);
        assert_eq!(t.interrupted(), None);
    }

    #[test]
    fn cancel_fault_trips_the_token_once() {
        let t = CancelToken::new();
        let before = triggered();
        {
            let _g = inject(Phase::Rank, FaultAction::Cancel);
            check(Phase::Distance, &t); // wrong phase: nothing
            assert_eq!(t.interrupted(), None);
            check(Phase::Rank, &t);
            assert!(t.interrupted().is_some());
            assert_eq!(triggered(), before + 1);
            // one-shot: a fresh token is not re-tripped
            let t2 = CancelToken::new();
            check(Phase::Rank, &t2);
            assert_eq!(t2.interrupted(), None);
        }
    }

    #[test]
    fn panic_fault_panics_and_guard_disarms() {
        let t = CancelToken::new();
        let g = inject(Phase::Fit, FaultAction::Panic);
        let r = catch_unwind(AssertUnwindSafe(|| check(Phase::Fit, &t)));
        assert!(r.is_err());
        drop(g);
        // disarmed after the guard: polls are no-ops again
        check(Phase::Fit, &t);
        assert_eq!(t.interrupted(), None);
    }

    #[test]
    fn skip_count_delays_the_trigger() {
        let t = CancelToken::new();
        let _g = inject_after(Phase::Distance, FaultAction::Cancel, 2);
        check(Phase::Distance, &t);
        check(Phase::Distance, &t);
        assert_eq!(t.interrupted(), None);
        check(Phase::Distance, &t);
        assert!(t.interrupted().is_some());
    }
}
