//! # visdb-exec
//!
//! The shared execution runtime: **one** budgeted, persistent worker pool
//! serving every layer of the system — the service's request dispatch at
//! the top and `visdb_relevance`'s chunked row walks at the bottom.
//!
//! Before this crate existed the repository had three uncoordinated
//! sources of threads (the service's fixed pool, per-walk scoped spawns
//! inside the relevance pipeline, and the bench harness), so several
//! concurrent large queries could oversubscribe a multi-core box. A
//! [`Runtime`] replaces all of them with a fixed set of worker threads —
//! the **global in-flight thread budget** — and two ways to put work on
//! them:
//!
//! * [`Runtime::spawn`] — the long-lived task-queue API: fire-and-forget
//!   `'static` jobs (the service schedules one job per session drain).
//! * [`Runtime::run_tasks`] / [`run_tasks`] — the scoped fork-join API:
//!   a blocking call that fans a batch of tasks out across the pool
//!   while the **caller participates** in executing its own batch.
//!   Because tasks may borrow from the caller's stack (each task
//!   typically owns a disjoint `&mut` sub-slice of an output vector),
//!   no `Arc`/channel plumbing is needed, exactly like the scoped
//!   threads it replaces.
//!
//! ## Why fork-join callers must participate
//!
//! Pipeline walks run *inside* pool jobs (a service worker executing a
//! request reaches the chunked distance passes). If the fork-join caller
//! merely waited for pool capacity, a pool saturated with such jobs
//! would deadlock — every job waiting for helpers that can never be
//! scheduled. Instead the caller drains its own task queue; idle pool
//! workers *steal* from registered batches opportunistically. The caller
//! alone can always finish, so nested fork-join is deadlock-free by
//! construction, and thread count stays pinned at the budget.
//!
//! ## Determinism
//!
//! Tasks carry their own mutable state and the runtime never splits or
//! reorders a task's work, so results are independent of which thread
//! runs which task — the property the relevance pipeline's bit-identity
//! guarantees rest on.
//!
//! ## Single-core behaviour and the `pooled_vs_scoped` baseline
//!
//! On a runtime whose budget is 1 (the default on a single-core box),
//! [`run_tasks`] never touches the registry, the queue mutex or a
//! condvar: the batch runs **inline on the calling thread**, exactly
//! like the pre-runtime scoped baseline does at one thread
//! (regression-tested below). The two arms of the `pipeline_perf`
//! `pooled_vs_scoped` comparison therefore execute byte-identical
//! serial loops on such a box, and any recorded ratio away from 1.0
//! (e.g. the 0.82 of one committed n=1M run) is wall-clock noise, not a
//! fork-join handoff cost — the same committed history spans a 6×
//! spread on the *unchanged* scalar binary. On multi-core boxes the
//! pooled walk does pay one mutex-protected pop per claimed task where
//! the scoped baseline pre-buckets tasks with zero contention; at the
//! pipeline's 16k-row chunk size (~100 µs/task) that per-claim cost is
//! ~three orders of magnitude below the task itself, and stealing buys
//! load balance the static buckets cannot.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use visdb_obs::{Counter, Gauge, Histogram, Registry};

mod cancel;
pub mod fault;

pub use cancel::{CancelToken, Interrupt};
pub use fault::{FaultAction, FaultGuard, Phase};

/// Hard cap on the default budget: the pipeline is memory-bound well
/// before 16 cores, and the cap keeps worst-case thread counts sane on
/// very wide boxes (explicit [`Runtime::new`] budgets may exceed it).
pub const DEFAULT_BUDGET_CAP: usize = 16;

/// A fire-and-forget pool job.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters exposed for observability and the oversubscription
/// regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Worker threads this runtime created (fixed at the budget).
    pub threads: usize,
    /// Peak number of worker threads simultaneously executing work —
    /// can never exceed `threads`, which is the point of the budget.
    pub peak_active: usize,
    /// Fire-and-forget jobs executed to completion.
    pub jobs_executed: usize,
    /// Fork-join tasks executed by *pool* workers (tasks the caller ran
    /// itself are not counted; they cost no extra thread).
    pub tasks_stolen: usize,
}

/// What a registered fork-join batch exposes to stealing workers. The
/// registry stores type-erased pointers to stack-allocated batches; the
/// visitor protocol in [`Shared::unregister`] keeps every dereference
/// inside the batch's real lifetime.
trait StealSource: Sync {
    /// Whether tasks remain to be claimed.
    fn has_tasks(&self) -> bool;
    /// Claim and run tasks until the batch queue is empty.
    fn run_until_empty(&self);
    /// Count of workers currently inside `run_until_empty` (mutated only
    /// under the registry lock).
    fn visitors(&self) -> &AtomicUsize;
}

/// A registered fork-join batch. The raw pointer is valid from
/// registration until [`Shared::unregister`] returns (the visitor
/// handshake), which is what makes `Send` sound here.
struct ScopeHandle {
    id: u64,
    source: *const (dyn StealSource + 'static),
}

// SAFETY: the pointee is only dereferenced by workers that registered as
// visitors under the state lock; `unregister` removes the handle and then
// waits for the visitor count to reach zero before the pointee is freed.
unsafe impl Send for ScopeHandle {}

struct State {
    jobs: VecDeque<Job>,
    scopes: Vec<ScopeHandle>,
    next_scope_id: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers sleep here waiting for jobs or registered batches.
    work: Condvar,
    /// Fork-join callers sleep here waiting for visitors to step out.
    progress: Condvar,
    threads: usize,
    active: AtomicUsize,
    // observability handles (visdb-obs): shared with any registry the
    // runtime is published into via [`Runtime::register_metrics`] —
    // recording stays lock-free either way
    peak_active: Arc<Gauge>,
    jobs_executed: Arc<Counter>,
    tasks_stolen: Arc<Counter>,
    /// Jobs queued but not yet started (incremented under the state
    /// lock at enqueue, decremented by the claiming worker).
    queue_depth: Arc<Gauge>,
    /// Wall-clock nanoseconds per fire-and-forget job body.
    job_latency: Arc<Histogram>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn begin_active(&self) {
        let now = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak_active.set_max(now as i64);
    }

    fn end_active(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Register a fork-join batch so idle workers can steal from it.
    /// Returns the handle id used to unregister.
    ///
    /// SAFETY (caller): `source` must stay valid until the matching
    /// [`Shared::unregister`] call returns.
    unsafe fn register(&self, source: *const (dyn StealSource + 'static)) -> u64 {
        let mut st = self.lock();
        let id = st.next_scope_id;
        st.next_scope_id += 1;
        st.scopes.push(ScopeHandle { id, source });
        drop(st);
        self.work.notify_all();
        id
    }

    /// Remove a batch from the registry and wait until no worker is
    /// still inside it. After this returns, no pool thread holds a
    /// reference to the batch.
    fn unregister(&self, id: u64, visitors: &AtomicUsize) {
        let mut st = self.lock();
        st.scopes.retain(|s| s.id != id);
        while visitors.load(Ordering::Acquire) != 0 {
            st = match self.progress.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

thread_local! {
    /// The runtime owning the current thread, when it is a pool worker.
    /// Fork-join calls from pool threads reuse their own runtime, so a
    /// service's nested chunk walks share the service's budget instead
    /// of spilling onto the global pool.
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

fn worker_loop(shared: Arc<Shared>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
    let mut st = shared.lock();
    loop {
        if let Some(job) = st.jobs.pop_front() {
            drop(st);
            shared.queue_depth.dec();
            shared.begin_active();
            let started = Instant::now();
            // a panicking job must not kill the worker thread: the
            // thread *is* the budget, and the job's owner observes the
            // failure through its own channels (e.g. a dropped reply)
            let _ = catch_unwind(AssertUnwindSafe(job));
            shared.job_latency.record_duration(started.elapsed());
            shared.end_active();
            shared.jobs_executed.inc();
            st = shared.lock();
            continue;
        }
        let stealable = st.scopes.iter().find_map(|s| {
            // SAFETY: the handle is registered, so the pointee is alive;
            // we hold the state lock, which `unregister` needs to remove
            // the handle.
            let src = unsafe { &*s.source };
            src.has_tasks().then_some(s.source)
        });
        if let Some(ptr) = stealable {
            // enter as a visitor while still holding the state lock so
            // `unregister` cannot complete before we are counted
            unsafe { &*ptr }.visitors().fetch_add(1, Ordering::AcqRel);
            drop(st);
            shared.begin_active();
            // SAFETY: the visitor count keeps the batch alive.
            unsafe { &*ptr }.run_until_empty();
            shared.end_active();
            st = shared.lock();
            unsafe { &*ptr }.visitors().fetch_sub(1, Ordering::AcqRel);
            drop(st);
            // the batch's caller may be waiting for visitors to leave
            shared.progress.notify_all();
            st = shared.lock();
            continue;
        }
        if st.shutdown {
            return;
        }
        st = match shared.work.wait(st) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// One stack-allocated fork-join batch: the pending tasks, the
/// completion handshake, and the shared task body.
struct ScopeSource<'env, T> {
    queue: Mutex<ScopeQueue<T>>,
    done: Condvar,
    f: &'env (dyn Fn(T) + Sync),
    visitors: AtomicUsize,
    panicked: AtomicBool,
    stolen: &'env Counter,
}

struct ScopeQueue<T> {
    tasks: VecDeque<T>,
    in_flight: usize,
}

impl<T: Send> ScopeSource<'_, T> {
    fn lock(&self) -> MutexGuard<'_, ScopeQueue<T>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Claim and run tasks until none remain, counting each toward
    /// `stolen` when asked (pool workers) — the caller passes `false`.
    fn drain(&self, count_stolen: bool) {
        loop {
            let task = {
                let mut q = self.lock();
                match q.tasks.pop_front() {
                    Some(t) => {
                        // claimed under the lock so completion checks
                        // (empty && in_flight == 0) never miss a task
                        q.in_flight += 1;
                        t
                    }
                    None => return,
                }
            };
            if count_stolen {
                self.stolen.inc();
            }
            if catch_unwind(AssertUnwindSafe(|| (self.f)(task))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            let mut q = self.lock();
            q.in_flight -= 1;
            if q.tasks.is_empty() && q.in_flight == 0 {
                drop(q);
                self.done.notify_all();
            }
        }
    }
}

impl<T: Send> StealSource for ScopeSource<'_, T> {
    fn has_tasks(&self) -> bool {
        !self.lock().tasks.is_empty()
    }

    fn run_until_empty(&self) {
        self.drain(true);
    }

    fn visitors(&self) -> &AtomicUsize {
        &self.visitors
    }
}

/// A budgeted execution runtime: `budget` persistent worker threads, a
/// fire-and-forget job queue, and a registry of fork-join batches that
/// idle workers steal from. See the crate docs for the architecture.
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Start a runtime with exactly `budget.max(1)` worker threads. The
    /// budget is the hard ceiling on threads this runtime ever creates —
    /// there is no spawn-per-call anywhere behind it.
    pub fn new(budget: usize) -> Runtime {
        let threads = budget.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                scopes: Vec::new(),
                next_scope_id: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
            threads,
            active: AtomicUsize::new(0),
            peak_active: Arc::new(Gauge::new()),
            jobs_executed: Arc::new(Counter::new()),
            tasks_stolen: Arc::new(Counter::new()),
            queue_depth: Arc::new(Gauge::new()),
            job_latency: Arc::new(Histogram::new()),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("visdb-exec-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn exec worker")
            })
            .collect();
        Runtime { shared, handles }
    }

    /// The process-wide default runtime. Budget:
    /// `min(available_parallelism, 16)`, overridable with the
    /// `VISDB_EXEC_BUDGET` environment variable. Callers that are not
    /// running on some runtime's worker thread (tests, examples, the
    /// bench harness) land here.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let budget = std::env::var("VISDB_EXEC_BUDGET")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        .min(DEFAULT_BUDGET_CAP)
                });
            Runtime::new(budget)
        })
    }

    /// The thread budget (= worker threads owned by this runtime).
    pub fn budget(&self) -> usize {
        self.shared.threads
    }

    /// Current counters.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            threads: self.shared.threads,
            peak_active: self.shared.peak_active.get().max(0) as usize,
            jobs_executed: self.shared.jobs_executed.get() as usize,
            tasks_stolen: self.shared.tasks_stolen.get() as usize,
        }
    }

    /// Publish this runtime's live metric handles into `registry` under
    /// the `exec.*` namespace. The registry then observes every future
    /// update for free — the handles are shared, not copied — so one
    /// call at service start-up is enough:
    ///
    /// - `exec.threads` (gauge): the fixed thread budget,
    /// - `exec.peak_active` (gauge): high-water mark of busy workers,
    /// - `exec.queue_depth` (gauge): jobs enqueued but not yet started,
    /// - `exec.jobs_executed` (counter): fire-and-forget jobs completed,
    /// - `exec.tasks_stolen` (counter): fork-join tasks run by idle
    ///   pool workers rather than the submitting thread,
    /// - `exec.job_latency_ns` (histogram): wall time per job body.
    pub fn register_metrics(&self, registry: &Registry) {
        registry
            .gauge("exec.threads")
            .set(self.shared.threads as i64);
        registry.register_gauge("exec.peak_active", Arc::clone(&self.shared.peak_active));
        registry.register_gauge("exec.queue_depth", Arc::clone(&self.shared.queue_depth));
        registry.register_counter("exec.jobs_executed", Arc::clone(&self.shared.jobs_executed));
        registry.register_counter("exec.tasks_stolen", Arc::clone(&self.shared.tasks_stolen));
        registry.register_histogram("exec.job_latency_ns", Arc::clone(&self.shared.job_latency));
    }

    /// Queue a fire-and-forget job on the pool (the long-lived
    /// task-queue API). Jobs run in FIFO order relative to each other;
    /// a job that panics is contained (the worker survives).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut st = self.shared.lock();
        st.jobs.push_back(Box::new(job));
        // incremented under the state lock, before any worker can pop
        // the job, so the gauge never goes transiently negative
        self.shared.queue_depth.inc();
        drop(st);
        self.shared.work.notify_one();
    }

    /// Fork-join over this runtime: run `f` once per task, letting idle
    /// pool workers steal tasks while the calling thread drains its own
    /// batch. Blocks until every task has finished. Tasks typically own
    /// disjoint `&mut` sub-slices of a caller-local output; no `Arc` or
    /// channels are required.
    ///
    /// Panics (after completing the remaining tasks) if any task
    /// panicked.
    pub fn run_tasks<T: Send>(&self, tasks: Vec<T>, f: impl Fn(T) + Sync) {
        run_tasks_on(&self.shared, tasks, f);
    }

    /// Run `f` with this runtime installed as the calling thread's
    /// current runtime, so nested [`run_tasks`] calls use it instead of
    /// the global pool. Pool worker threads are installed automatically;
    /// this exists for benches and tests driving the pipeline directly.
    /// The previous runtime is restored on exit even if `f` panics (a
    /// caught panic must not leave the thread pointed at a runtime that
    /// may since have been dropped).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<Shared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = previous);
            }
        }
        let _restore = Restore(CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.shared))));
        f()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        // workers drain already-queued jobs before exiting; joining from
        // one of this runtime's own workers would deadlock, so detach in
        // that (never expected) case
        let self_worker = CURRENT
            .with(|c| c.borrow().as_ref().map(|s| Arc::ptr_eq(s, &self.shared)))
            .unwrap_or(false);
        for handle in self.handles.drain(..) {
            if self_worker {
                continue;
            }
            let _ = handle.join();
        }
    }
}

/// Fork-join on the calling thread's current runtime (its own pool when
/// called from a worker thread, the [`Runtime::global`] pool otherwise).
/// This is the entry point `visdb_relevance::chunk` fans out through.
pub fn run_tasks<T: Send>(tasks: Vec<T>, f: impl Fn(T) + Sync) {
    let shared = CURRENT.with(|c| c.borrow().clone());
    match shared {
        Some(shared) => run_tasks_on(&shared, tasks, f),
        None => run_tasks_on(&Runtime::global().shared, tasks, f),
    }
}

/// The worker-thread count backing [`run_tasks`] on this thread — how
/// many threads a fork-join here could occupy at most. Callers use it to
/// skip fan-out bookkeeping when the pool cannot parallelize anyway.
pub fn current_budget() -> usize {
    CURRENT
        .with(|c| c.borrow().as_ref().map(|s| s.threads))
        .unwrap_or_else(|| Runtime::global().budget())
}

fn run_tasks_on<T: Send>(shared: &Arc<Shared>, tasks: Vec<T>, f: impl Fn(T) + Sync) {
    if tasks.is_empty() {
        return;
    }
    // nothing to win from the registry dance with a single task, or
    // when this runtime cannot offer a second thread
    if tasks.len() == 1 || shared.threads <= 1 {
        for task in tasks {
            f(task);
        }
        return;
    }
    let source = ScopeSource {
        queue: Mutex::new(ScopeQueue {
            tasks: tasks.into(),
            in_flight: 0,
        }),
        done: Condvar::new(),
        f: &f,
        visitors: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        stolen: &shared.tasks_stolen,
    };
    // SAFETY: `source` outlives the registration — `unregister` below
    // runs before `source` drops and waits out every visitor. The
    // lifetime transmute only erases 'env from the registry entry.
    let id = unsafe {
        let ptr: *const (dyn StealSource + '_) = &source;
        shared.register(std::mem::transmute::<
            *const (dyn StealSource + '_),
            *const (dyn StealSource + 'static),
        >(ptr))
    };
    // the caller participates: it can finish the whole batch alone, so
    // fork-join never waits on pool capacity (deadlock freedom)
    source.drain(false);
    {
        let mut q = source.lock();
        while !(q.tasks.is_empty() && q.in_flight == 0) {
            q = match source.done.wait(q) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
    shared.unregister(id, &source.visitors);
    if source.panicked.load(Ordering::Acquire) {
        panic!("visdb-exec: a fork-join task panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fork_join_covers_every_task_exactly_once() {
        let rt = Runtime::new(4);
        let mut out = vec![0usize; 1000];
        let tasks: Vec<(usize, &mut [usize])> = out.chunks_mut(7).enumerate().collect();
        rt.run_tasks(tasks, |(i, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = i * 7 + j;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn spawned_jobs_all_run() {
        let rt = Runtime::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            rt.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        for _ in 0..50 {
            rx.recv_timeout(std::time::Duration::from_secs(10))
                .expect("job completed");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        // the jobs_executed metric is bumped *after* a job body runs (a
        // job's own channel send can be observed first), so poll briefly
        // instead of asserting the counter raced ahead
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while rt.metrics().jobs_executed < 50 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(rt.metrics().jobs_executed >= 50);
    }

    #[test]
    fn budget_one_runs_fork_join_inline_on_the_caller() {
        // the single-core guarantee the `pooled_vs_scoped` analysis
        // rests on: a budget-1 runtime executes fork-join batches as a
        // plain inline loop on the calling thread — no queue round-trip,
        // no stealing, nothing for a worker to contend on
        let rt = Runtime::new(1);
        let stolen_before = rt.metrics().tasks_stolen;
        let caller = std::thread::current().id();
        let ids = Mutex::new(Vec::new());
        rt.install(|| {
            super::run_tasks((0..8).collect::<Vec<usize>>(), |_| {
                ids.lock().unwrap().push(std::thread::current().id());
            });
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 8);
        assert!(ids.iter().all(|&id| id == caller));
        assert_eq!(rt.metrics().tasks_stolen, stolen_before);
    }

    #[test]
    fn nested_fork_join_inside_a_job_completes() {
        // a saturated pool must not deadlock: every job runs a fork-join
        let rt = Arc::new(Runtime::new(2));
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            let rt2 = Arc::clone(&rt);
            rt.spawn(move || {
                let mut out = vec![0u32; 100_000];
                let tasks: Vec<(usize, &mut [u32])> = out.chunks_mut(1000).enumerate().collect();
                rt2.run_tasks(tasks, |(i, chunk)| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 1000 + j) as u32;
                    }
                });
                assert!(out.iter().enumerate().all(|(i, &v)| v as usize == i));
                let _ = tx.send(());
            });
        }
        for _ in 0..8 {
            rx.recv_timeout(std::time::Duration::from_secs(30))
                .expect("nested fork-join finished");
        }
    }

    #[test]
    fn budget_bounds_live_threads() {
        let rt = Runtime::new(3);
        let m = rt.metrics();
        assert_eq!(m.threads, 3);
        let tasks: Vec<usize> = (0..64).collect();
        rt.run_tasks(tasks, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let m = rt.metrics();
        assert!(m.peak_active <= 3, "peak {} > budget", m.peak_active);
    }

    #[test]
    fn task_panic_propagates_to_the_caller() {
        let rt = Runtime::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.run_tasks((0..10).collect::<Vec<usize>>(), |i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // the pool survives a task panic
        rt.run_tasks(vec![1, 2, 3], |_| {});
    }

    #[test]
    fn job_panic_does_not_kill_the_worker() {
        let rt = Runtime::new(1);
        rt.spawn(|| panic!("contained"));
        let (tx, rx) = std::sync::mpsc::channel();
        rt.spawn(move || {
            let _ = tx.send(42);
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn install_routes_run_tasks_to_the_installed_runtime() {
        let rt = Runtime::new(2);
        let before = rt.metrics().tasks_stolen;
        rt.install(|| {
            super::run_tasks((0..256).collect::<Vec<usize>>(), |_| {
                std::thread::sleep(std::time::Duration::from_micros(50));
            });
        });
        // workers of the installed runtime had a chance to steal; at
        // minimum the call completed on the right pool without panicking
        let _ = before;
        assert_eq!(rt.budget(), 2);
    }

    #[test]
    fn drop_joins_workers_and_finishes_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let rt = Runtime::new(2);
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                rt.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop: workers drain the queue, then exit
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}
