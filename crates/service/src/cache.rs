//! The shared query-result cache.
//!
//! Identical renders from *different* users are the common case under
//! heavy traffic (everyone starts from the same default query of a
//! dashboard). The cache is keyed by the full visual input — dataset,
//! normalized query text and display parameters (see
//! [`crate::api::render_key`]) — and stores complete [`Response::Frame`]
//! values, so a hit skips the whole pipeline: materialisation, distance
//! passes, normalization, combining, sorting and rasterisation.
//!
//! Eviction is least-recently-used via a logical clock. Frame bytes are
//! `Arc`-shared, so hits hand out cheap clones.

use std::collections::HashMap;
use std::sync::Mutex;

use std::sync::Arc;

use visdb_index::{ProjectionSource, SortedProjection};
use visdb_obs::{Counter, Registry};
use visdb_relevance::{PredicateWindow, WindowRecipe, WindowSource};

use crate::api::Response;

/// Hit/miss counters for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Renders served from the cache.
    pub hits: usize,
    /// Renders that ran the pipeline.
    pub misses: usize,
}

/// Register a cache's live hit/miss counters under
/// `{prefix}.hits` / `{prefix}.misses`. The handles are shared, so the
/// registry observes every future lookup without polling.
fn register_hit_miss(
    registry: &Registry,
    prefix: &str,
    hits: &Arc<Counter>,
    misses: &Arc<Counter>,
) {
    registry.register_counter(&format!("{prefix}.hits"), Arc::clone(hits));
    registry.register_counter(&format!("{prefix}.misses"), Arc::clone(misses));
}

/// Whether a cache key's scope (`{name}#{generation}`, length-prefix
/// framed — see [`visdb_relevance::key_scope`]) belongs to dataset
/// `name`: the generation suffix is split off at the **last** `#` and
/// the name compared exactly.
fn scope_is_dataset(key: &str, name: &str) -> bool {
    visdb_relevance::key_scope(key)
        .and_then(|scope| scope.rsplit_once('#'))
        .is_some_and(|(scope_name, _)| scope_name == name)
}

struct Entry {
    response: Response,
    last_used: u64,
}

/// A bounded LRU map from render keys to finished responses.
pub struct QueryCache {
    entries: Mutex<(HashMap<String, Entry>, u64)>,
    capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl QueryCache {
    /// Cache holding at most `capacity` responses; zero disables caching
    /// (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            entries: Mutex::new((HashMap::new(), 0)),
            capacity,
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
        }
    }

    /// Publish this cache's live hit/miss counters into `registry` under
    /// `{prefix}.hits` / `{prefix}.misses`.
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        register_hit_miss(registry, prefix, &self.hits, &self.misses);
    }

    /// Whether lookups can ever succeed (capacity > 0). Callers skip
    /// key construction entirely for a disabled cache.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up a finished response, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Response> {
        if self.capacity == 0 {
            self.misses.inc();
            return None;
        }
        let mut guard = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (map, clock) = &mut *guard;
        *clock += 1;
        match map.get_mut(key) {
            Some(entry) => {
                entry.last_used = *clock;
                self.hits.inc();
                Some(entry.response.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Store a finished response, evicting the LRU entry at capacity.
    pub fn put(&self, key: String, response: Response) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (map, clock) = &mut *guard;
        *clock += 1;
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if let Some(lru) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                map.remove(&lru);
            }
        }
        map.insert(
            key,
            Entry {
                response,
                last_used: *clock,
            },
        );
    }

    /// Drop every entry belonging to dataset `name` (any generation) —
    /// dataset re-registration invalidates that dataset's cached
    /// frames. The dataset is recovered from the key by parsing the
    /// length-prefixed scope ([`visdb_relevance::key_scope`]) and
    /// splitting off the service-appended `#generation` suffix, then
    /// compared **exactly**, so a crafted dataset name (e.g. `"env#1"`)
    /// can neither dodge its own invalidation nor trigger another
    /// dataset's.
    pub fn invalidate_dataset(&self, name: &str) {
        let mut guard = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0.retain(|k, _| !scope_is_dataset(k, name));
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
        }
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        match self.entries.lock() {
            Ok(g) => g.0.len(),
            Err(poisoned) => poisoned.into_inner().0.len(),
        }
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct WindowEntry {
    window: PredicateWindow,
    /// The append-extension recipe captured at evaluation time (None for
    /// window shapes that cannot be extended row-locally) — what lets a
    /// dataset append *grow* this entry instead of dropping it.
    recipe: Option<WindowRecipe>,
    rows: usize,
    last_used: u64,
}

/// The mutex-guarded state of a [`WindowCache`]. `total_rows` is
/// maintained incrementally on insert/remove so eviction never rescans
/// the whole map while holding the lock every query contends on.
#[derive(Default)]
struct WindowMap {
    map: HashMap<String, WindowEntry>,
    clock: u64,
    total_rows: usize,
}

impl WindowMap {
    fn insert(&mut self, key: String, entry: WindowEntry) {
        self.total_rows += entry.rows;
        if let Some(old) = self.map.insert(key, entry) {
            self.total_rows -= old.rows;
        }
    }

    fn remove(&mut self, key: &str) {
        if let Some(old) = self.map.remove(key) {
            self.total_rows -= old.rows;
        }
    }
}

/// The shared **predicate-window** cache: finer-grained than
/// [`QueryCache`], it caches one evaluated + normalized window per
/// condition subtree (keyed by `visdb_relevance::window_key`: dataset
/// generation, base relation, display budget, weight and the rendered
/// subtree). Where the query cache only helps when the *entire* render
/// is identical, this cache makes a slider drag that changes one
/// predicate reuse every other window — across sessions, so one user's
/// drag is cheap for everyone (the §6 incremental idea, cross-session).
///
/// Window payloads are `Arc`-shared; hits hand out cheap clones.
/// Eviction is least-recently-used via a logical clock.
pub struct WindowCache {
    entries: Mutex<WindowMap>,
    capacity: usize,
    row_budget: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

/// Default bound on the *total rows* cached across all windows. Entry
/// count alone is no memory bound — one window over a 1M-row relation
/// holds two packed `DistanceFrame`s of that length (8-byte values plus
/// a byte validity mask, ~18 MB/window vs the ~32 MB the old
/// `Vec<Option<f64>>` pair cost) — so eviction also honours a row
/// budget: 8M rows ≈ 144 MB resident worst case, roughly half of what
/// the same budget pinned before the packed representation.
pub const DEFAULT_WINDOW_ROW_BUDGET: usize = 8_000_000;

impl WindowCache {
    /// Cache holding at most `capacity` windows (zero disables caching)
    /// and at most [`DEFAULT_WINDOW_ROW_BUDGET`] total rows.
    pub fn new(capacity: usize) -> Self {
        Self::with_row_budget(capacity, DEFAULT_WINDOW_ROW_BUDGET)
    }

    /// [`WindowCache::new`] with an explicit total-row budget. The most
    /// recently stored window is always retained (even alone over
    /// budget), so one giant relation degrades to single-window reuse
    /// rather than disabling the cache.
    pub fn with_row_budget(capacity: usize, row_budget: usize) -> Self {
        WindowCache {
            entries: Mutex::new(WindowMap::default()),
            capacity,
            row_budget,
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
        }
    }

    /// Publish this cache's live hit/miss counters into `registry` under
    /// `{prefix}.hits` / `{prefix}.misses`.
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        register_hit_miss(registry, prefix, &self.hits, &self.misses);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowMap> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Whether lookups can ever succeed (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Drop every entry belonging to dataset `name`, any generation
    /// (exact-match semantics of [`QueryCache::invalidate_dataset`]) —
    /// dataset re-registration frees the replaced generation's windows;
    /// the generation-scoped keys already prevent stale hits.
    pub fn invalidate_dataset(&self, name: &str) {
        let mut guard = self.lock();
        let mut dropped = 0;
        guard.map.retain(|k, e| {
            let keep = !scope_is_dataset(k, name);
            if !keep {
                dropped += e.rows;
            }
            keep
        });
        guard.total_rows -= dropped;
    }

    /// Remove and return every entry belonging to dataset `name`, any
    /// generation — the delta-append migration path: the service drains
    /// the old generation's windows, extends the extendable ones with
    /// the appended rows, and re-stores them under the new generation's
    /// keys (see `Service::append_rows`).
    pub fn drain_dataset(
        &self,
        name: &str,
    ) -> Vec<(String, PredicateWindow, Option<WindowRecipe>)> {
        let mut guard = self.lock();
        let keys: Vec<String> = guard
            .map
            .keys()
            .filter(|k| scope_is_dataset(k, name))
            .cloned()
            .collect();
        let mut drained = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(entry) = guard.map.remove(&key) {
                guard.total_rows -= entry.rows;
                drained.push((key, entry.window, entry.recipe));
            }
        }
        drained
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
        }
    }

    /// Number of cached windows.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl WindowSource for WindowCache {
    fn lookup(&self, key: &str) -> Option<PredicateWindow> {
        if self.capacity == 0 {
            self.misses.inc();
            return None;
        }
        let mut guard = self.lock();
        guard.clock += 1;
        let clock = guard.clock;
        match guard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.inc();
                Some(entry.window.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn store(&self, key: String, window: PredicateWindow, recipe: Option<WindowRecipe>) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.lock();
        guard.clock += 1;
        let clock = guard.clock;
        let rows = window.len();
        guard.insert(
            key,
            WindowEntry {
                window,
                recipe,
                rows,
                last_used: clock,
            },
        );
        // evict LRU entries until both the entry-count cap and the
        // total-row budget hold (the just-stored entry is never evicted);
        // `total_rows` is a running counter, so each round costs one
        // O(entries) LRU scan, not a full row re-sum
        while guard.map.len() > 1
            && (guard.map.len() > self.capacity || guard.total_rows > self.row_budget)
        {
            let lru = guard
                .map
                .iter()
                .filter(|(_, e)| e.last_used != clock)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(lru) => guard.remove(&lru),
                None => break,
            }
        }
    }
}

struct ProjectionEntry {
    projection: Arc<SortedProjection>,
    rows: usize,
    last_used: u64,
}

/// The mutex-guarded state of a [`ProjectionCache`]; `total_rows` is
/// maintained incrementally like [`WindowMap`]'s.
#[derive(Default)]
struct ProjectionMap {
    map: HashMap<String, ProjectionEntry>,
    clock: u64,
    total_rows: usize,
}

/// Default bound on the total rows cached across all shared projections:
/// a projection costs ~20 bytes/row (coords + permutation + sorted
/// values), so 8M rows ≈ 160 MB resident worst case.
pub const DEFAULT_PROJECTION_ROW_BUDGET: usize = 8_000_000;

/// The shared **sorted-projection** cache: one built
/// [`SortedProjection`] per (dataset generation, table, row count,
/// column), keyed by [`visdb_core::projection_key`]. The slider fast
/// path's per-column build is the expensive part of a cold drag
/// (O(n log n), ~20 bytes/row); sharing it means N sessions dragging the
/// same column pay for **one** build — the per-session state that
/// remains is only the thin §6 candidate-band cache.
///
/// Eviction is least-recently-used under both an entry cap and a
/// total-row budget; dataset re-registration drops the replaced
/// generation's projections (the generation-scoped keys already prevent
/// stale hits).
pub struct ProjectionCache {
    entries: Mutex<ProjectionMap>,
    capacity: usize,
    row_budget: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl ProjectionCache {
    /// Cache holding at most `capacity` projections (zero disables
    /// sharing) and at most [`DEFAULT_PROJECTION_ROW_BUDGET`] total rows.
    pub fn new(capacity: usize) -> Self {
        Self::with_row_budget(capacity, DEFAULT_PROJECTION_ROW_BUDGET)
    }

    /// [`ProjectionCache::new`] with an explicit total-row budget. The
    /// most recently stored projection is always retained, so one giant
    /// relation degrades to single-projection reuse rather than
    /// disabling the cache.
    pub fn with_row_budget(capacity: usize, row_budget: usize) -> Self {
        ProjectionCache {
            entries: Mutex::new(ProjectionMap::default()),
            capacity,
            row_budget,
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
        }
    }

    /// Publish this cache's live hit/miss counters into `registry` under
    /// `{prefix}.hits` / `{prefix}.misses`.
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        register_hit_miss(registry, prefix, &self.hits, &self.misses);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProjectionMap> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Whether lookups can ever succeed (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Drop every projection belonging to dataset `name`, any generation
    /// (the exact-match semantics of
    /// [`QueryCache::invalidate_dataset`]) — generation rotation frees
    /// the replaced dataset's builds.
    pub fn invalidate_dataset(&self, name: &str) {
        let mut guard = self.lock();
        let mut dropped = 0;
        guard.map.retain(|k, e| {
            let keep = !scope_is_dataset(k, name);
            if !keep {
                dropped += e.rows;
            }
            keep
        });
        guard.total_rows -= dropped;
    }

    /// Remove and return every projection belonging to dataset `name`,
    /// any generation — the delta-append migration path: the service
    /// merges the appended rows into each drained build
    /// ([`SortedProjection::extended`]) and re-stores it under the new
    /// generation's key instead of paying a cold O(n log n) rebuild.
    pub fn drain_dataset(&self, name: &str) -> Vec<(String, Arc<SortedProjection>)> {
        let mut guard = self.lock();
        let keys: Vec<String> = guard
            .map
            .keys()
            .filter(|k| scope_is_dataset(k, name))
            .cloned()
            .collect();
        let mut drained = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(entry) = guard.map.remove(&key) {
                guard.total_rows -= entry.rows;
                drained.push((key, entry.projection));
            }
        }
        drained
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
        }
    }

    /// Number of cached projections.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProjectionSource for ProjectionCache {
    fn lookup(&self, key: &str) -> Option<Arc<SortedProjection>> {
        if self.capacity == 0 {
            self.misses.inc();
            return None;
        }
        let mut guard = self.lock();
        guard.clock += 1;
        let clock = guard.clock;
        match guard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.inc();
                Some(Arc::clone(&entry.projection))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn store(&self, key: String, projection: Arc<SortedProjection>) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.lock();
        guard.clock += 1;
        let clock = guard.clock;
        let rows = projection.rows();
        guard.total_rows += rows;
        if let Some(old) = guard.map.insert(
            key,
            ProjectionEntry {
                projection,
                rows,
                last_used: clock,
            },
        ) {
            guard.total_rows -= old.rows;
        }
        // evict LRU entries until both bounds hold (never the entry
        // just stored)
        while guard.map.len() > 1
            && (guard.map.len() > self.capacity || guard.total_rows > self.row_budget)
        {
            let lru = guard
                .map
                .iter()
                .filter(|(_, e)| e.last_used != clock)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(lru) => {
                    if let Some(old) = guard.map.remove(&lru) {
                        guard.total_rows -= old.rows;
                    }
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use visdb_relevance::{DistanceFrame, NormParams};

    fn window(tag: f64) -> PredicateWindow {
        window_of(tag, 1)
    }

    fn window_of(tag: f64, rows: usize) -> PredicateWindow {
        PredicateWindow::full(
            format!("w{tag}"),
            true,
            1.0,
            Arc::new(DistanceFrame::from_options(&vec![Some(tag); rows])),
            Arc::new(DistanceFrame::from_options(&vec![Some(0.0); rows])),
            NormParams {
                dmin: 0.0,
                dmax: tag,
            },
        )
    }

    #[test]
    fn window_cache_hit_miss_and_lru() {
        let c = WindowCache::new(2);
        assert!(c.lookup("a").is_none());
        c.store("a".into(), window(1.0), None);
        c.store("b".into(), window(2.0), None);
        assert_eq!(c.lookup("a").unwrap().norm_params.dmax, 1.0);
        c.store("c".into(), window(3.0), None); // evicts b (LRU)
        assert_eq!(c.len(), 2);
        assert!(c.lookup("b").is_none());
        assert!(c.lookup("a").is_some());
        assert!(c.lookup("c").is_some());
        let stats = c.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn window_cache_row_budget_bounds_memory() {
        fn wide(tag: f64, rows: usize) -> PredicateWindow {
            window_of(tag, rows)
        }
        // budget of 100 rows: two 60-row windows cannot coexist
        let c = WindowCache::with_row_budget(8, 100);
        c.store("a".into(), wide(1.0, 60), None);
        c.store("b".into(), wide(2.0, 60), None);
        assert_eq!(c.len(), 1);
        assert!(c.lookup("a").is_none(), "LRU evicted for the row budget");
        assert!(c.lookup("b").is_some());
        // a single over-budget window is still retained (degrades to
        // single-window reuse, never disables the cache)
        c.store("huge".into(), wide(3.0, 1_000), None);
        assert_eq!(c.len(), 1);
        assert!(c.lookup("huge").is_some());
        // small windows accumulate up to the entry cap as before
        let c = WindowCache::with_row_budget(3, 100);
        for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
            c.store((*key).into(), wide(i as f64, 10), None);
        }
        assert_eq!(c.len(), 3);
        assert!(c.lookup("a").is_none());
    }

    /// A key framed the way `visdb_relevance::window_key` frames scopes:
    /// `len:scope` followed by the rest.
    fn scoped_key(scope: &str, rest: &str) -> String {
        format!("{}:{scope}{rest}", scope.len())
    }

    #[test]
    fn window_cache_dataset_invalidation_and_disable() {
        let c = WindowCache::new(8);
        c.store(scoped_key("ramp#1", "k1"), window(1.0), None);
        c.store(scoped_key("ramp#1", "k2"), window(2.0), None);
        c.store(scoped_key("env#2", "k1"), window(3.0), None);
        // crafted dataset names are matched exactly, never by raw key
        // or scope prefix: a dataset literally named "ramp#1" (scope
        // "ramp#1#7") and one whose key merely *contains* the bytes
        // both survive dataset "ramp"'s invalidation
        c.store(scoped_key("ramp#1#7", "k1"), window(4.0), None);
        c.store(scoped_key("evil#3", "ramp#1suffix"), window(5.0), None);
        c.invalidate_dataset("ramp");
        assert_eq!(c.len(), 3);
        assert!(c.lookup(&scoped_key("env#2", "k1")).is_some());
        assert!(c.lookup(&scoped_key("ramp#1#7", "k1")).is_some());
        assert!(c.lookup(&scoped_key("evil#3", "ramp#1suffix")).is_some());

        let off = WindowCache::new(0);
        assert!(!off.is_enabled());
        off.store("x".into(), window(1.0), None);
        assert!(off.is_empty());
        assert!(off.lookup("x").is_none());
    }

    #[test]
    fn hit_after_put() {
        let c = QueryCache::new(4);
        assert_eq!(c.get("k"), None);
        c.put("k".into(), Response::Ok);
        assert_eq!(c.get("k"), Some(Response::Ok));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = QueryCache::new(2);
        c.put("a".into(), Response::Ok);
        c.put("b".into(), Response::Ok);
        assert!(c.get("a").is_some()); // refresh a; b becomes LRU
        c.put("c".into(), Response::Ok);
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let c = QueryCache::new(2);
        c.put("a".into(), Response::Ok);
        c.put("b".into(), Response::Ok);
        c.put(
            "a".into(),
            Response::error(crate::api::ErrorKind::Internal, "new"),
        );
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.get("a"),
            Some(Response::error(crate::api::ErrorKind::Internal, "new"))
        );
        assert!(c.get("b").is_some());
    }

    #[test]
    fn dataset_invalidation_scopes_to_one_dataset() {
        let c = QueryCache::new(8);
        c.put(scoped_key("env#1", "\u{1f}q1"), Response::Ok);
        c.put(scoped_key("env#1", "\u{1f}q2"), Response::Ok);
        c.put(scoped_key("ramp#2", "\u{1f}q1"), Response::Ok);
        // a *distinct* dataset named "env#1" (scope "env#1#3") is not
        // collateral damage of reloading dataset "env"
        c.put(scoped_key("env#1#3", "\u{1f}q1"), Response::Ok);
        c.invalidate_dataset("env");
        assert_eq!(c.len(), 2);
        assert!(c.get(&scoped_key("env#1", "\u{1f}q1")).is_none());
        assert!(c.get(&scoped_key("ramp#2", "\u{1f}q1")).is_some());
        assert!(c.get(&scoped_key("env#1#3", "\u{1f}q1")).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = QueryCache::new(0);
        c.put("a".into(), Response::Ok);
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.stats().hits, 0);
    }
}
