//! The shared query-result cache.
//!
//! Identical renders from *different* users are the common case under
//! heavy traffic (everyone starts from the same default query of a
//! dashboard). The cache is keyed by the full visual input — dataset,
//! normalized query text and display parameters (see
//! [`crate::api::render_key`]) — and stores complete [`Response::Frame`]
//! values, so a hit skips the whole pipeline: materialisation, distance
//! passes, normalization, combining, sorting and rasterisation.
//!
//! Eviction is least-recently-used via a logical clock. Frame bytes are
//! `Arc`-shared, so hits hand out cheap clones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::api::Response;

/// Hit/miss counters for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Renders served from the cache.
    pub hits: usize,
    /// Renders that ran the pipeline.
    pub misses: usize,
}

struct Entry {
    response: Response,
    last_used: u64,
}

/// A bounded LRU map from render keys to finished responses.
pub struct QueryCache {
    entries: Mutex<(HashMap<String, Entry>, u64)>,
    capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl QueryCache {
    /// Cache holding at most `capacity` responses; zero disables caching
    /// (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            entries: Mutex::new((HashMap::new(), 0)),
            capacity,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Whether lookups can ever succeed (capacity > 0). Callers skip
    /// key construction entirely for a disabled cache.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up a finished response, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Response> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut guard = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (map, clock) = &mut *guard;
        *clock += 1;
        match map.get_mut(key) {
            Some(entry) => {
                entry.last_used = *clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.response.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a finished response, evicting the LRU entry at capacity.
    pub fn put(&self, key: String, response: Response) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (map, clock) = &mut *guard;
        *clock += 1;
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if let Some(lru) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                map.remove(&lru);
            }
        }
        map.insert(
            key,
            Entry {
                response,
                last_used: *clock,
            },
        );
    }

    /// Drop every entry whose key starts with `prefix` (dataset
    /// re-registration invalidates that dataset's cached frames).
    pub fn invalidate_prefix(&self, prefix: &str) {
        let mut guard = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0.retain(|k, _| !k.starts_with(prefix));
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        match self.entries.lock() {
            Ok(g) => g.0.len(),
            Err(poisoned) => poisoned.into_inner().0.len(),
        }
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let c = QueryCache::new(4);
        assert_eq!(c.get("k"), None);
        c.put("k".into(), Response::Ok);
        assert_eq!(c.get("k"), Some(Response::Ok));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = QueryCache::new(2);
        c.put("a".into(), Response::Ok);
        c.put("b".into(), Response::Ok);
        assert!(c.get("a").is_some()); // refresh a; b becomes LRU
        c.put("c".into(), Response::Ok);
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let c = QueryCache::new(2);
        c.put("a".into(), Response::Ok);
        c.put("b".into(), Response::Ok);
        c.put("a".into(), Response::Error("new".into()));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), Some(Response::Error("new".into())));
        assert!(c.get("b").is_some());
    }

    #[test]
    fn prefix_invalidation_scopes_to_one_dataset() {
        let c = QueryCache::new(8);
        c.put("env\u{1f}q1".into(), Response::Ok);
        c.put("env\u{1f}q2".into(), Response::Ok);
        c.put("ramp\u{1f}q1".into(), Response::Ok);
        c.invalidate_prefix("env\u{1f}");
        assert_eq!(c.len(), 1);
        assert!(c.get("env\u{1f}q1").is_none());
        assert!(c.get("ramp\u{1f}q1").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = QueryCache::new(0);
        c.put("a".into(), Response::Ok);
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.stats().hits, 0);
    }
}
