//! The service's request/response vocabulary and the single execution
//! path shared by the worker pool, the stdio server and tests.
//!
//! Every variant of [`Request`] maps to one of the paper's §4.3
//! interactions: installing a query, dragging a predicate slider,
//! changing a weighting factor, switching the display policy, and
//! fetching the recalculated visualization. [`execute`] applies a request
//! to a session; because the same function runs under the concurrent
//! service and in a plain single-threaded harness, service responses are
//! byte-identical to serial [`Session`] results.

use std::sync::Arc;

use visdb_core::{render_session, RenderOptions, Session};
use visdb_obs::{MetricValue, Snapshot};
use visdb_query::ast::{CompareOp, PredicateTarget};
use visdb_query::printer::render_query;
use visdb_relevance::pipeline::{DisplayPolicy, PipelineTrace};
use visdb_render::ascii::to_ascii;
use visdb_render::write_ppm;
use visdb_types::{Error, Result, Value};

use crate::cache::QueryCache;
use crate::json::{base64_encode, Json};

/// Width (in characters) of ASCII-rendered frames.
const ASCII_COLS: usize = 80;

/// Output encoding for a rendered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenderFormat {
    /// Terminal preview (`visdb-render::ascii`).
    Ascii,
    /// Binary P6 PPM bytes.
    Ppm,
}

/// One per-session operation (§4.3 interactions, serialized per session).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; also bumps the session's idle clock.
    Ping,
    /// Parse and install a query from the mini SQL dialect.
    SetQueryText(String),
    /// Switch the display policy (the "% of data displayed" slider).
    SetDisplayPolicy(DisplayPolicy),
    /// Set the weighting factor of a top-level query window.
    SetWeight {
        /// Top-level window index.
        window: usize,
        /// New weighting factor (≥ 0, finite).
        weight: f64,
    },
    /// Drag a predicate slider: replace the comparison of a top-level
    /// predicate window.
    MoveSlider {
        /// Top-level window index.
        window: usize,
        /// New comparison operator.
        op: CompareOp,
        /// New comparison value.
        value: f64,
    },
    /// Drag a predicate slider through the *interactive* path
    /// ([`Session::drag_slider`]): the modification is applied like
    /// [`Request::MoveSlider`], but the reply carries the drag's panel
    /// counters immediately — served by the sorted-projection fast path
    /// (O(log n + k), shared per (dataset generation, column) across
    /// sessions) whenever the query shape allows, by a bit-identical
    /// full recompute otherwise.
    DragSlider {
        /// Top-level window index.
        window: usize,
        /// New comparison operator.
        op: CompareOp,
        /// New comparison value.
        value: f64,
        /// Return a [`TraceReport`] with the reply when the drag fell
        /// back to a full pipeline recompute (the sorted-projection fast
        /// path runs no pipeline, so an incremental drag carries no
        /// trace).
        trace: bool,
    },
    /// Resize the visualization windows (items per window).
    SetWindowSize {
        /// Width in items.
        w: usize,
        /// Height in items.
        h: usize,
    },
    /// Fetch the modification-panel counters for the current query.
    Summary {
        /// Also return the [`TraceReport`] of the pipeline run that
        /// produced the counters (per-phase wall times, rows scanned vs
        /// pruned, cache hits, the chosen materialization mode).
        trace: bool,
    },
    /// Fetch the rendered visualization panel.
    Render(RenderFormat),
    /// Fetch the full telemetry-registry snapshot (service-level: the
    /// service answers it directly without touching any session's
    /// mailbox; [`execute`] against a bare session has no registry and
    /// reports an error).
    Metrics,
}

impl Request {
    /// The wire-protocol op name — also the metric label under
    /// `service.requests.{op}` / `service.latency_ns.{op}`.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::SetQueryText(_) => "set_query",
            Request::SetDisplayPolicy(_) => "set_policy",
            Request::SetWeight { .. } => "set_weight",
            Request::MoveSlider { .. } => "move_slider",
            Request::DragSlider { .. } => "drag_slider",
            Request::SetWindowSize { .. } => "set_window_size",
            Request::Summary { .. } => "summary",
            Request::Render(_) => "render",
            Request::Metrics => "metrics",
        }
    }
}

/// The per-query execution trace returned for `trace: true` requests —
/// the wire form of [`PipelineTrace`], with phase durations flattened to
/// integer nanoseconds. The phase names match the bench harness's
/// `phase_ms` fields (`distance`, `fit`, `normalize_combine`, `rank`),
/// so a server trace lines up with `BENCH_pipeline.json` directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// `"materialized"` or `"streaming"` — what the planner chose.
    pub mode: String,
    /// Distance-evaluation phase (§5 distance functions), nanoseconds.
    pub distance_ns: u64,
    /// Normalization-fit phase (§5.2 fit), nanoseconds.
    pub fit_ns: u64,
    /// Normalize + combine phase (§5.2), nanoseconds.
    pub normalize_combine_ns: u64,
    /// Rank / top-k selection phase, nanoseconds.
    pub rank_ns: u64,
    /// Rows the distance pass examined.
    pub rows_scanned: u64,
    /// Streaming offers short-circuited by the shared top-k threshold.
    pub rows_pruned: u64,
    /// Horizontal partition fan-out (1 = unpartitioned).
    pub partitions: usize,
    /// Predicate windows served by the per-session §6 cache.
    pub window_cache_hits: usize,
    /// Predicate windows served by the cross-session shared cache.
    pub shared_window_hits: usize,
    /// Predicate windows actually evaluated.
    pub windows_evaluated: usize,
}

impl From<&PipelineTrace> for TraceReport {
    fn from(t: &PipelineTrace) -> Self {
        TraceReport {
            mode: if t.streaming {
                "streaming".into()
            } else {
                "materialized".into()
            },
            distance_ns: t.phases.distance.as_nanos() as u64,
            fit_ns: t.phases.fit.as_nanos() as u64,
            normalize_combine_ns: t.phases.normalize_combine.as_nanos() as u64,
            rank_ns: t.phases.rank.as_nanos() as u64,
            rows_scanned: t.rows_scanned,
            rows_pruned: t.rows_pruned,
            partitions: t.partitions,
            window_cache_hits: t.cache_hits,
            shared_window_hits: t.shared_hits,
            windows_evaluated: t.windows_evaluated,
        }
    }
}

/// The modification-panel counters (fig 4/5 right-hand side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// Number of data items considered.
    pub objects: usize,
    /// Number of items displayed.
    pub displayed: usize,
    /// Number of exact answers.
    pub exact: usize,
    /// Number of per-predicate windows.
    pub windows: usize,
    /// Execution trace of the pipeline run behind the counters; present
    /// only for `Request::Summary { trace: true }` (`None` by default —
    /// the common path allocates nothing).
    pub trace: Option<Box<TraceReport>>,
}

/// Failure taxonomy of [`Response::Error`] — the wire `"kind"` field.
/// Clients branch on the kind (retry a `Shed`, drop a `Cancelled`,
/// surface an `InvalidRequest`), not on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request itself is malformed or invalid for the session's
    /// current state (bad fields, unknown ops, invalid queries, ...).
    InvalidRequest,
    /// The request was cancelled (a `cancel` op or an abandoned caller).
    Cancelled,
    /// The request's `deadline_ms` expired before it completed.
    DeadlineExceeded,
    /// Admission control refused the request because the service's
    /// pending-work depth passed its watermark; retry after the hint.
    Shed,
    /// The request panicked or hit an internal invariant; the session
    /// was recycled and stays usable.
    Internal,
}

impl ErrorKind {
    /// Classify an [`Error`] from the execution layers.
    pub fn of(e: &Error) -> ErrorKind {
        match e {
            Error::Cancelled => ErrorKind::Cancelled,
            Error::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            Error::Internal(_) | Error::Io(_) => ErrorKind::Internal,
            _ => ErrorKind::InvalidRequest,
        }
    }

    /// The wire `"kind"` string.
    pub fn wire_name(&self) -> &'static str {
        match self {
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Shed => "shed",
            ErrorKind::Internal => "internal",
        }
    }
}

/// The reply to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded and produces no payload.
    Ok,
    /// Panel counters for [`Request::Summary`].
    Summary(SessionSummary),
    /// The interactive answer of a [`Request::DragSlider`].
    Drag {
        /// Number of items the display policy selects after the drag.
        displayed: usize,
        /// Exact answers of the modified query.
        exact: usize,
        /// Whether the sorted-projection fast path served the drag.
        incremental: bool,
        /// Trace of the full recompute, when the drag requested one and
        /// fell off the fast path (an incremental drag runs no pipeline).
        trace: Option<Box<TraceReport>>,
    },
    /// A rendered frame for [`Request::Render`].
    Frame {
        /// Encoding of `bytes`.
        format: RenderFormat,
        /// Frame width in pixels.
        width: usize,
        /// Frame height in pixels.
        height: usize,
        /// ASCII text or binary PPM, per `format`.
        bytes: Arc<Vec<u8>>,
    },
    /// The full telemetry-registry snapshot for [`Request::Metrics`].
    Metrics(Box<Snapshot>),
    /// The request failed; the session stays usable.
    Error {
        /// What class of failure this is (drives client retry logic).
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
        /// For [`ErrorKind::Shed`]: how long the client should back off
        /// before retrying.
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// The error response for an execution-layer [`Error`].
    pub fn from_error(e: &Error) -> Response {
        Response::Error {
            kind: ErrorKind::of(e),
            message: e.to_string(),
            retry_after_ms: None,
        }
    }

    /// An error response with an explicit kind (service-level failures
    /// that never pass through an [`Error`]: panics, shedding).
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// The admission-control refusal, with its retry-after hint.
    pub fn shed(message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response::Error {
            kind: ErrorKind::Shed,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }
}

/// A session plus the dataset tag it was created over (the tag scopes
/// shared-cache keys; the service uses `name#generation` so sessions
/// over a replaced dataset of the same name never share entries).
pub struct SessionState {
    /// The underlying interactive session.
    pub session: Session,
    /// Cache-scope tag of the dataset the session was created over.
    pub dataset: String,
}

/// Apply one request to a session, optionally consulting the shared
/// query-result cache for renders.
pub fn execute(
    state: &mut SessionState,
    request: &Request,
    cache: Option<&QueryCache>,
) -> Response {
    match apply(state, request, cache) {
        Ok(r) => r,
        Err(e) => Response::from_error(&e),
    }
}

fn apply(
    state: &mut SessionState,
    request: &Request,
    cache: Option<&QueryCache>,
) -> Result<Response> {
    let session = &mut state.session;
    match request {
        Request::Ping => Ok(Response::Ok),
        Request::SetQueryText(text) => {
            session.set_query_text(text)?;
            Ok(Response::Ok)
        }
        Request::SetDisplayPolicy(policy) => {
            session.set_display_policy(policy.clone())?;
            Ok(Response::Ok)
        }
        Request::SetWeight { window, weight } => {
            session.set_weight(*window, *weight)?;
            Ok(Response::Ok)
        }
        Request::MoveSlider { window, op, value } => {
            session.set_predicate_target(
                *window,
                PredicateTarget::Compare {
                    op: *op,
                    value: Value::Float(*value),
                },
            )?;
            Ok(Response::Ok)
        }
        Request::DragSlider {
            window,
            op,
            value,
            trace,
        } => {
            if *trace {
                session.set_collect_trace(true);
            }
            let drag = session.drag_slider(
                *window,
                PredicateTarget::Compare {
                    op: *op,
                    value: Value::Float(*value),
                },
            )?;
            let incremental = drag.incremental;
            let displayed = drag.displayed.len();
            let exact = drag.num_exact;
            // the fast path answers from the sorted projection without
            // running the pipeline, so only the full-recompute fallback
            // has a trace of *this* drag to report
            let trace = (*trace && !incremental)
                .then(|| session.last_trace().map(|t| Box::new(t.into())))
                .flatten();
            Ok(Response::Drag {
                displayed,
                exact,
                incremental,
                trace,
            })
        }
        Request::SetWindowSize { w, h } => {
            session.set_window_size(*w, *h)?;
            Ok(Response::Ok)
        }
        Request::Summary { trace } => {
            if *trace {
                // ensures the (re)computation below runs traced even on
                // sessions that were not created with trace collection
                session.set_collect_trace(true);
            }
            let res = session.result()?;
            let (objects, displayed, exact, windows) = (
                res.pipeline.n,
                res.pipeline.displayed.len(),
                res.pipeline.num_exact,
                res.pipeline.windows.len(),
            );
            let trace = trace
                .then(|| session.last_trace().map(|t| Box::new(t.into())))
                .flatten();
            Ok(Response::Summary(SessionSummary {
                objects,
                displayed,
                exact,
                windows,
                trace,
            }))
        }
        Request::Render(format) => {
            // a disabled cache can neither hit nor store: skip the key
            // construction (query printing) entirely
            let cache = cache.filter(|c| c.is_enabled());
            let key = cache.map(|_| render_key(state, *format));
            if let (Some(cache), Some(key)) = (cache, &key) {
                if let Some(hit) = cache.get(key) {
                    // identical query from another (or the same) session:
                    // the frame is served without re-running the pipeline
                    return Ok(hit);
                }
            }
            let response = render(&mut state.session, *format)?;
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.put(key, response.clone());
            }
            Ok(response)
        }
        Request::Metrics => Err(Error::invalid_parameter(
            "op",
            "the metrics op is service-level; submit it through a Service",
        )),
    }
}

fn render(session: &mut Session, format: RenderFormat) -> Result<Response> {
    let fb = render_session(session, &RenderOptions::default())?;
    let bytes = match format {
        RenderFormat::Ascii => to_ascii(&fb, ASCII_COLS).into_bytes(),
        RenderFormat::Ppm => {
            let mut out = Vec::new();
            write_ppm(&fb, &mut out)?;
            out
        }
    };
    Ok(Response::Frame {
        format,
        width: fb.width(),
        height: fb.height(),
        bytes: Arc::new(bytes),
    })
}

/// The shared-cache key for a render: every session-level input that can
/// change the produced bytes. The query is normalized through the §4.1
/// query-representation printer, so two sessions installing structurally
/// identical queries (even via different builder paths) share an entry.
/// The two user-controlled strings — the dataset scope and the rendered
/// query — are length-prefixed, so neither a crafted dataset name nor a
/// crafted string literal inside the query can shift bytes into the
/// following fields (the remaining fields are service-controlled
/// numerics/enums). Sessions with a non-default distance resolver or
/// join options must not share a cache (the service never customizes
/// either).
pub fn render_key(state: &SessionState, format: RenderFormat) -> String {
    let session = &state.session;
    let query = match session.query() {
        Some(q) => render_query(q),
        None => "(no query)".to_string(),
    };
    let (w, h) = session.window_size();
    format!(
        "{}{}:{query}\u{1f}{:?}\u{1f}{}x{}\u{1f}{:?}\u{1f}{:?}\u{1f}{:?}\u{1f}{:?}",
        dataset_key_prefix(&state.dataset),
        query.len(),
        session.display_policy(),
        w,
        h,
        session.pixels_per_item(),
        session.colormap().kind(),
        // tuple selection renders as a highlight, so it is part of the
        // frame identity (reachable by embedders via the Session API)
        session.selected_item(),
        format,
    )
}

/// The cache-key scope header owned by one dataset: the same
/// length-prefixed framing as `visdb_relevance::window_key`, so
/// [`crate::cache::QueryCache::invalidate_dataset`] can parse the scope
/// back out (`visdb_relevance::key_scope`) instead of raw-prefix
/// matching a user-controlled name.
pub(crate) fn dataset_key_prefix(dataset: &str) -> String {
    format!("{}:{dataset}\u{1f}", dataset.len())
}

// ----- JSON wire mapping (the visdb-server protocol) ---------------------

impl RenderFormat {
    fn parse(s: &str) -> Result<Self> {
        match s {
            "ascii" => Ok(RenderFormat::Ascii),
            "ppm" => Ok(RenderFormat::Ppm),
            other => Err(Error::invalid_parameter(
                "format",
                format!("unknown render format '{other}' (ascii|ppm)"),
            )),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            RenderFormat::Ascii => "ascii",
            RenderFormat::Ppm => "ppm",
        }
    }
}

fn compare_op_parse(s: &str) -> Result<CompareOp> {
    Ok(match s {
        "=" | "==" => CompareOp::Eq,
        "!=" | "<>" => CompareOp::Ne,
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => {
            return Err(Error::invalid_parameter(
                "cmp",
                format!("unknown comparison operator '{other}'"),
            ))
        }
    })
}

fn require_str<'a>(msg: &'a Json, field: &str) -> Result<&'a str> {
    msg.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| Error::invalid_parameter(field.to_string(), "missing string field"))
}

fn require_f64(msg: &Json, field: &str) -> Result<f64> {
    msg.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| Error::invalid_parameter(field.to_string(), "missing numeric field"))
}

fn require_usize(msg: &Json, field: &str) -> Result<usize> {
    msg.get(field)
        .and_then(Json::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| Error::invalid_parameter(field.to_string(), "missing integer field"))
}

/// The optional `"trace": true` flag carried by summary / drag requests.
fn optional_trace(msg: &Json) -> bool {
    msg.get("trace").and_then(Json::as_bool).unwrap_or(false)
}

impl Request {
    /// Decode the `op`-discriminated wire form used by `visdb-server`.
    pub fn from_json(msg: &Json) -> Result<Request> {
        let op = require_str(msg, "op")?;
        Ok(match op {
            "ping" => Request::Ping,
            "set_query" => Request::SetQueryText(require_str(msg, "text")?.to_string()),
            "set_policy" => {
                let policy = if let Some(p) = msg.get("percentage").and_then(Json::as_f64) {
                    DisplayPolicy::Percentage(p)
                } else if let Some(p) = msg.get("two_sided").and_then(Json::as_f64) {
                    DisplayPolicy::TwoSidedPercentage(p)
                } else if msg.get("pixels").is_some() {
                    DisplayPolicy::FitScreen {
                        pixels: require_usize(msg, "pixels")?,
                        pixels_per_item: require_usize(msg, "pixels_per_item")?,
                    }
                } else if msg.get("rmin").is_some() {
                    DisplayPolicy::GapHeuristic {
                        rmin: require_usize(msg, "rmin")?,
                        rmax: require_usize(msg, "rmax")?,
                        z: require_usize(msg, "z")?,
                    }
                } else {
                    return Err(Error::invalid_parameter(
                        "set_policy",
                        "expected percentage | two_sided | pixels+pixels_per_item | rmin+rmax+z",
                    ));
                };
                Request::SetDisplayPolicy(policy)
            }
            "set_weight" => Request::SetWeight {
                window: require_usize(msg, "window")?,
                weight: require_f64(msg, "weight")?,
            },
            "move_slider" => Request::MoveSlider {
                window: require_usize(msg, "window")?,
                op: compare_op_parse(require_str(msg, "cmp")?)?,
                value: require_f64(msg, "value")?,
            },
            "drag_slider" => Request::DragSlider {
                window: require_usize(msg, "window")?,
                op: compare_op_parse(require_str(msg, "cmp")?)?,
                value: require_f64(msg, "value")?,
                trace: optional_trace(msg),
            },
            "set_window_size" => Request::SetWindowSize {
                w: require_usize(msg, "w")?,
                h: require_usize(msg, "h")?,
            },
            "summary" => Request::Summary {
                trace: optional_trace(msg),
            },
            "render" => Request::Render(RenderFormat::parse(
                msg.get("format").and_then(Json::as_str).unwrap_or("ascii"),
            )?),
            "metrics" => Request::Metrics,
            other => {
                return Err(Error::invalid_parameter(
                    "op",
                    format!("unknown session op '{other}'"),
                ))
            }
        })
    }
}

impl TraceReport {
    /// The wire form of the trace (`"trace"` in summary / drag replies).
    /// Keys mirror the struct fields; durations stay integer ns.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("mode", self.mode.as_str().into()),
            ("distance_ns", self.distance_ns.into()),
            ("fit_ns", self.fit_ns.into()),
            ("normalize_combine_ns", self.normalize_combine_ns.into()),
            ("rank_ns", self.rank_ns.into()),
            ("rows_scanned", self.rows_scanned.into()),
            ("rows_pruned", self.rows_pruned.into()),
            ("partitions", self.partitions.into()),
            ("window_cache_hits", self.window_cache_hits.into()),
            ("shared_window_hits", self.shared_window_hits.into()),
            ("windows_evaluated", self.windows_evaluated.into()),
        ])
    }
}

/// The JSON form of a registry snapshot: one key per metric, counters
/// and gauges as numbers, histograms as `{count, sum, p50, p90, p99}`
/// objects. Sorted (BTreeMap) like every other protocol object.
fn snapshot_to_json(snapshot: &Snapshot) -> Json {
    Json::Obj(
        snapshot
            .entries
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(c) => (*c).into(),
                    MetricValue::Gauge(g) => Json::Num(*g as f64),
                    MetricValue::Histogram(h) => Json::obj([
                        ("count", h.count.into()),
                        ("sum", h.sum.into()),
                        ("p50", h.p50.into()),
                        ("p90", h.p90.into()),
                        ("p99", h.p99.into()),
                    ]),
                };
                (name.clone(), v)
            })
            .collect(),
    )
}

impl Response {
    /// Encode the wire form used by `visdb-server`. ASCII frames travel
    /// as plain text, PPM frames as base64.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok => Json::obj([("ok", Json::Bool(true))]),
            Response::Summary(s) => {
                let mut summary = Json::obj([
                    ("objects", s.objects.into()),
                    ("displayed", s.displayed.into()),
                    ("exact", s.exact.into()),
                    ("windows", s.windows.into()),
                ]);
                if let (Some(t), Json::Obj(map)) = (&s.trace, &mut summary) {
                    map.insert("trace".into(), t.to_json());
                }
                Json::obj([("ok", Json::Bool(true)), ("summary", summary)])
            }
            Response::Drag {
                displayed,
                exact,
                incremental,
                trace,
            } => {
                let mut drag = Json::obj([
                    ("displayed", (*displayed).into()),
                    ("exact", (*exact).into()),
                    ("incremental", Json::Bool(*incremental)),
                ]);
                if let (Some(t), Json::Obj(map)) = (trace, &mut drag) {
                    map.insert("trace".into(), t.to_json());
                }
                Json::obj([("ok", Json::Bool(true)), ("drag", drag)])
            }
            Response::Frame {
                format,
                width,
                height,
                bytes,
            } => {
                let data = match format {
                    RenderFormat::Ascii => String::from_utf8_lossy(bytes).into_owned(),
                    RenderFormat::Ppm => base64_encode(bytes),
                };
                Json::obj([
                    ("ok", Json::Bool(true)),
                    (
                        "frame",
                        Json::obj([
                            ("format", format.name().into()),
                            ("width", (*width).into()),
                            ("height", (*height).into()),
                            ("data", data.into()),
                        ]),
                    ),
                ])
            }
            Response::Metrics(snapshot) => Json::obj([
                ("ok", Json::Bool(true)),
                ("metrics", snapshot_to_json(snapshot)),
                ("prometheus", snapshot.prometheus().into()),
            ]),
            Response::Error {
                kind,
                message,
                retry_after_ms,
            } => {
                let mut obj = Json::obj([
                    ("ok", Json::Bool(false)),
                    ("error", message.as_str().into()),
                    ("kind", kind.wire_name().into()),
                ]);
                if let (Some(ms), Json::Obj(map)) = (retry_after_ms, &mut obj) {
                    map.insert("retry_after_ms".into(), (*ms).into());
                }
                obj
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use visdb_query::connection::ConnectionRegistry;
    use visdb_storage::{Database, TableBuilder};
    use visdb_types::{Column, DataType};

    fn state(n: usize) -> SessionState {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        SessionState {
            session: Session::new(Arc::new(db), ConnectionRegistry::new()),
            dataset: "d".into(),
        }
    }

    #[test]
    fn full_interaction_round_trip() {
        let mut st = state(100);
        assert_eq!(execute(&mut st, &Request::Ping, None), Response::Ok);
        assert_eq!(
            execute(
                &mut st,
                &Request::SetQueryText("SELECT * FROM T WHERE x >= 90".into()),
                None
            ),
            Response::Ok
        );
        let summary = execute(&mut st, &Request::Summary { trace: false }, None);
        assert_eq!(
            summary,
            Response::Summary(SessionSummary {
                objects: 100,
                displayed: 25,
                exact: 10,
                windows: 1,
                trace: None,
            })
        );
        // drag the slider down to 50: more exact answers
        assert_eq!(
            execute(
                &mut st,
                &Request::MoveSlider {
                    window: 0,
                    op: CompareOp::Ge,
                    value: 50.0
                },
                None
            ),
            Response::Ok
        );
        match execute(&mut st, &Request::Summary { trace: false }, None) {
            Response::Summary(s) => assert_eq!(s.exact, 50),
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn render_formats_produce_frames() {
        let mut st = state(64);
        execute(
            &mut st,
            &Request::SetQueryText("SELECT * FROM T WHERE x >= 32".into()),
            None,
        );
        execute(&mut st, &Request::SetWindowSize { w: 8, h: 8 }, None);
        for format in [RenderFormat::Ascii, RenderFormat::Ppm] {
            match execute(&mut st, &Request::Render(format), None) {
                Response::Frame {
                    format: f,
                    width,
                    height,
                    bytes,
                } => {
                    assert_eq!(f, format);
                    assert!(width >= 8 && height >= 8);
                    assert!(!bytes.is_empty());
                    if format == RenderFormat::Ppm {
                        assert!(bytes.starts_with(b"P6\n"));
                    }
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_leave_the_session_usable() {
        let mut st = state(10);
        // no query installed yet
        assert!(matches!(
            execute(&mut st, &Request::Summary { trace: false }, None),
            Response::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
        assert!(matches!(
            execute(&mut st, &Request::SetQueryText("SELECT".into()), None),
            Response::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
        assert_eq!(
            execute(
                &mut st,
                &Request::SetQueryText("SELECT * FROM T WHERE x >= 5".into()),
                None
            ),
            Response::Ok
        );
        assert!(matches!(
            execute(&mut st, &Request::Summary { trace: false }, None),
            Response::Summary(_)
        ));
    }

    #[test]
    fn render_key_tracks_every_visual_input() {
        let mut st = state(10);
        execute(
            &mut st,
            &Request::SetQueryText("SELECT * FROM T WHERE x >= 5".into()),
            None,
        );
        let base = render_key(&st, RenderFormat::Ascii);
        assert!(base.contains("[x >= 5]"));
        // a tuple selection changes the rendered highlight, so the key
        let selected = {
            st.session.select_tuple(7).unwrap();
            render_key(&st, RenderFormat::Ascii)
        };
        assert_ne!(base, selected);
        st.session.clear_selection();
        assert_eq!(base, render_key(&st, RenderFormat::Ascii));
        // a different format, policy, size or weight gives a new key
        assert_ne!(base, render_key(&st, RenderFormat::Ppm));
        execute(&mut st, &Request::SetWindowSize { w: 16, h: 16 }, None);
        let resized = render_key(&st, RenderFormat::Ascii);
        assert_ne!(base, resized);
        execute(
            &mut st,
            &Request::SetDisplayPolicy(DisplayPolicy::Percentage(80.0)),
            None,
        );
        assert_ne!(resized, render_key(&st, RenderFormat::Ascii));
        execute(
            &mut st,
            &Request::SetWeight {
                window: 0,
                weight: 0.5,
            },
            None,
        );
        let reweighted = render_key(&st, RenderFormat::Ascii);
        assert!(reweighted.contains("(weight 0.5)"));
    }

    #[test]
    fn wire_requests_decode() {
        let msg = parse(r#"{"op":"move_slider","window":0,"cmp":">=","value":15.5}"#).unwrap();
        assert_eq!(
            Request::from_json(&msg).unwrap(),
            Request::MoveSlider {
                window: 0,
                op: CompareOp::Ge,
                value: 15.5
            }
        );
        let msg = parse(r#"{"op":"set_policy","percentage":40}"#).unwrap();
        assert_eq!(
            Request::from_json(&msg).unwrap(),
            Request::SetDisplayPolicy(DisplayPolicy::Percentage(40.0))
        );
        let msg = parse(r#"{"op":"render","format":"ppm"}"#).unwrap();
        assert_eq!(
            Request::from_json(&msg).unwrap(),
            Request::Render(RenderFormat::Ppm)
        );
        for bad in [
            r#"{"op":"nope"}"#,
            r#"{"op":"set_weight","window":0}"#,
            r#"{"op":"set_policy"}"#,
            r#"{"op":"move_slider","window":0,"cmp":"~","value":1}"#,
            r#"{"text":"no op"}"#,
        ] {
            assert!(Request::from_json(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn wire_responses_encode() {
        let r = Response::error(ErrorKind::Internal, "boom")
            .to_json()
            .to_string();
        assert_eq!(r, r#"{"error":"boom","kind":"internal","ok":false}"#);
        let r = Response::shed("overloaded", 50).to_json().to_string();
        assert_eq!(
            r,
            r#"{"error":"overloaded","kind":"shed","ok":false,"retry_after_ms":50}"#
        );
        let frame = Response::Frame {
            format: RenderFormat::Ppm,
            width: 2,
            height: 1,
            bytes: Arc::new(b"P6 raw".to_vec()),
        };
        let encoded = frame.to_json();
        assert_eq!(
            encoded.get("frame").unwrap().get("data").unwrap().as_str(),
            Some(base64_encode(b"P6 raw").as_str())
        );
    }
}
