//! The service's request/response vocabulary and the single execution
//! path shared by the worker pool, the stdio server and tests.
//!
//! Every variant of [`Request`] maps to one of the paper's §4.3
//! interactions: installing a query, dragging a predicate slider,
//! changing a weighting factor, switching the display policy, and
//! fetching the recalculated visualization. [`execute`] applies a request
//! to a session; because the same function runs under the concurrent
//! service and in a plain single-threaded harness, service responses are
//! byte-identical to serial [`Session`] results.

use std::sync::Arc;

use visdb_core::{render_session, RenderOptions, Session};
use visdb_query::ast::{CompareOp, PredicateTarget};
use visdb_query::printer::render_query;
use visdb_relevance::pipeline::DisplayPolicy;
use visdb_render::ascii::to_ascii;
use visdb_render::write_ppm;
use visdb_types::{Error, Result, Value};

use crate::cache::QueryCache;
use crate::json::{base64_encode, Json};

/// Width (in characters) of ASCII-rendered frames.
const ASCII_COLS: usize = 80;

/// Output encoding for a rendered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenderFormat {
    /// Terminal preview (`visdb-render::ascii`).
    Ascii,
    /// Binary P6 PPM bytes.
    Ppm,
}

/// One per-session operation (§4.3 interactions, serialized per session).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; also bumps the session's idle clock.
    Ping,
    /// Parse and install a query from the mini SQL dialect.
    SetQueryText(String),
    /// Switch the display policy (the "% of data displayed" slider).
    SetDisplayPolicy(DisplayPolicy),
    /// Set the weighting factor of a top-level query window.
    SetWeight {
        /// Top-level window index.
        window: usize,
        /// New weighting factor (≥ 0, finite).
        weight: f64,
    },
    /// Drag a predicate slider: replace the comparison of a top-level
    /// predicate window.
    MoveSlider {
        /// Top-level window index.
        window: usize,
        /// New comparison operator.
        op: CompareOp,
        /// New comparison value.
        value: f64,
    },
    /// Drag a predicate slider through the *interactive* path
    /// ([`Session::drag_slider`]): the modification is applied like
    /// [`Request::MoveSlider`], but the reply carries the drag's panel
    /// counters immediately — served by the sorted-projection fast path
    /// (O(log n + k), shared per (dataset generation, column) across
    /// sessions) whenever the query shape allows, by a bit-identical
    /// full recompute otherwise.
    DragSlider {
        /// Top-level window index.
        window: usize,
        /// New comparison operator.
        op: CompareOp,
        /// New comparison value.
        value: f64,
    },
    /// Resize the visualization windows (items per window).
    SetWindowSize {
        /// Width in items.
        w: usize,
        /// Height in items.
        h: usize,
    },
    /// Fetch the modification-panel counters for the current query.
    Summary,
    /// Fetch the rendered visualization panel.
    Render(RenderFormat),
}

/// The modification-panel counters (fig 4/5 right-hand side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// Number of data items considered.
    pub objects: usize,
    /// Number of items displayed.
    pub displayed: usize,
    /// Number of exact answers.
    pub exact: usize,
    /// Number of per-predicate windows.
    pub windows: usize,
}

/// The reply to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded and produces no payload.
    Ok,
    /// Panel counters for [`Request::Summary`].
    Summary(SessionSummary),
    /// The interactive answer of a [`Request::DragSlider`].
    Drag {
        /// Number of items the display policy selects after the drag.
        displayed: usize,
        /// Exact answers of the modified query.
        exact: usize,
        /// Whether the sorted-projection fast path served the drag.
        incremental: bool,
    },
    /// A rendered frame for [`Request::Render`].
    Frame {
        /// Encoding of `bytes`.
        format: RenderFormat,
        /// Frame width in pixels.
        width: usize,
        /// Frame height in pixels.
        height: usize,
        /// ASCII text or binary PPM, per `format`.
        bytes: Arc<Vec<u8>>,
    },
    /// The request failed; the session stays usable.
    Error(String),
}

/// A session plus the dataset tag it was created over (the tag scopes
/// shared-cache keys; the service uses `name#generation` so sessions
/// over a replaced dataset of the same name never share entries).
pub struct SessionState {
    /// The underlying interactive session.
    pub session: Session,
    /// Cache-scope tag of the dataset the session was created over.
    pub dataset: String,
}

/// Apply one request to a session, optionally consulting the shared
/// query-result cache for renders.
pub fn execute(
    state: &mut SessionState,
    request: &Request,
    cache: Option<&QueryCache>,
) -> Response {
    match apply(state, request, cache) {
        Ok(r) => r,
        Err(e) => Response::Error(e.to_string()),
    }
}

fn apply(
    state: &mut SessionState,
    request: &Request,
    cache: Option<&QueryCache>,
) -> Result<Response> {
    let session = &mut state.session;
    match request {
        Request::Ping => Ok(Response::Ok),
        Request::SetQueryText(text) => {
            session.set_query_text(text)?;
            Ok(Response::Ok)
        }
        Request::SetDisplayPolicy(policy) => {
            session.set_display_policy(policy.clone())?;
            Ok(Response::Ok)
        }
        Request::SetWeight { window, weight } => {
            session.set_weight(*window, *weight)?;
            Ok(Response::Ok)
        }
        Request::MoveSlider { window, op, value } => {
            session.set_predicate_target(
                *window,
                PredicateTarget::Compare {
                    op: *op,
                    value: Value::Float(*value),
                },
            )?;
            Ok(Response::Ok)
        }
        Request::DragSlider { window, op, value } => {
            let drag = session.drag_slider(
                *window,
                PredicateTarget::Compare {
                    op: *op,
                    value: Value::Float(*value),
                },
            )?;
            Ok(Response::Drag {
                displayed: drag.displayed.len(),
                exact: drag.num_exact,
                incremental: drag.incremental,
            })
        }
        Request::SetWindowSize { w, h } => {
            session.set_window_size(*w, *h)?;
            Ok(Response::Ok)
        }
        Request::Summary => {
            let res = session.result()?;
            Ok(Response::Summary(SessionSummary {
                objects: res.pipeline.n,
                displayed: res.pipeline.displayed.len(),
                exact: res.pipeline.num_exact,
                windows: res.pipeline.windows.len(),
            }))
        }
        Request::Render(format) => {
            // a disabled cache can neither hit nor store: skip the key
            // construction (query printing) entirely
            let cache = cache.filter(|c| c.is_enabled());
            let key = cache.map(|_| render_key(state, *format));
            if let (Some(cache), Some(key)) = (cache, &key) {
                if let Some(hit) = cache.get(key) {
                    // identical query from another (or the same) session:
                    // the frame is served without re-running the pipeline
                    return Ok(hit);
                }
            }
            let response = render(&mut state.session, *format)?;
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.put(key, response.clone());
            }
            Ok(response)
        }
    }
}

fn render(session: &mut Session, format: RenderFormat) -> Result<Response> {
    let fb = render_session(session, &RenderOptions::default())?;
    let bytes = match format {
        RenderFormat::Ascii => to_ascii(&fb, ASCII_COLS).into_bytes(),
        RenderFormat::Ppm => {
            let mut out = Vec::new();
            write_ppm(&fb, &mut out)?;
            out
        }
    };
    Ok(Response::Frame {
        format,
        width: fb.width(),
        height: fb.height(),
        bytes: Arc::new(bytes),
    })
}

/// The shared-cache key for a render: every session-level input that can
/// change the produced bytes. The query is normalized through the §4.1
/// query-representation printer, so two sessions installing structurally
/// identical queries (even via different builder paths) share an entry.
/// The two user-controlled strings — the dataset scope and the rendered
/// query — are length-prefixed, so neither a crafted dataset name nor a
/// crafted string literal inside the query can shift bytes into the
/// following fields (the remaining fields are service-controlled
/// numerics/enums). Sessions with a non-default distance resolver or
/// join options must not share a cache (the service never customizes
/// either).
pub fn render_key(state: &SessionState, format: RenderFormat) -> String {
    let session = &state.session;
    let query = match session.query() {
        Some(q) => render_query(q),
        None => "(no query)".to_string(),
    };
    let (w, h) = session.window_size();
    format!(
        "{}{}:{query}\u{1f}{:?}\u{1f}{}x{}\u{1f}{:?}\u{1f}{:?}\u{1f}{:?}\u{1f}{:?}",
        dataset_key_prefix(&state.dataset),
        query.len(),
        session.display_policy(),
        w,
        h,
        session.pixels_per_item(),
        session.colormap().kind(),
        // tuple selection renders as a highlight, so it is part of the
        // frame identity (reachable by embedders via the Session API)
        session.selected_item(),
        format,
    )
}

/// The cache-key scope header owned by one dataset: the same
/// length-prefixed framing as `visdb_relevance::window_key`, so
/// [`crate::cache::QueryCache::invalidate_dataset`] can parse the scope
/// back out (`visdb_relevance::key_scope`) instead of raw-prefix
/// matching a user-controlled name.
pub(crate) fn dataset_key_prefix(dataset: &str) -> String {
    format!("{}:{dataset}\u{1f}", dataset.len())
}

// ----- JSON wire mapping (the visdb-server protocol) ---------------------

impl RenderFormat {
    fn parse(s: &str) -> Result<Self> {
        match s {
            "ascii" => Ok(RenderFormat::Ascii),
            "ppm" => Ok(RenderFormat::Ppm),
            other => Err(Error::invalid_parameter(
                "format",
                format!("unknown render format '{other}' (ascii|ppm)"),
            )),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            RenderFormat::Ascii => "ascii",
            RenderFormat::Ppm => "ppm",
        }
    }
}

fn compare_op_parse(s: &str) -> Result<CompareOp> {
    Ok(match s {
        "=" | "==" => CompareOp::Eq,
        "!=" | "<>" => CompareOp::Ne,
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => {
            return Err(Error::invalid_parameter(
                "cmp",
                format!("unknown comparison operator '{other}'"),
            ))
        }
    })
}

fn require_str<'a>(msg: &'a Json, field: &str) -> Result<&'a str> {
    msg.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| Error::invalid_parameter(field.to_string(), "missing string field"))
}

fn require_f64(msg: &Json, field: &str) -> Result<f64> {
    msg.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| Error::invalid_parameter(field.to_string(), "missing numeric field"))
}

fn require_usize(msg: &Json, field: &str) -> Result<usize> {
    msg.get(field)
        .and_then(Json::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| Error::invalid_parameter(field.to_string(), "missing integer field"))
}

impl Request {
    /// Decode the `op`-discriminated wire form used by `visdb-server`.
    pub fn from_json(msg: &Json) -> Result<Request> {
        let op = require_str(msg, "op")?;
        Ok(match op {
            "ping" => Request::Ping,
            "set_query" => Request::SetQueryText(require_str(msg, "text")?.to_string()),
            "set_policy" => {
                let policy = if let Some(p) = msg.get("percentage").and_then(Json::as_f64) {
                    DisplayPolicy::Percentage(p)
                } else if let Some(p) = msg.get("two_sided").and_then(Json::as_f64) {
                    DisplayPolicy::TwoSidedPercentage(p)
                } else if msg.get("pixels").is_some() {
                    DisplayPolicy::FitScreen {
                        pixels: require_usize(msg, "pixels")?,
                        pixels_per_item: require_usize(msg, "pixels_per_item")?,
                    }
                } else if msg.get("rmin").is_some() {
                    DisplayPolicy::GapHeuristic {
                        rmin: require_usize(msg, "rmin")?,
                        rmax: require_usize(msg, "rmax")?,
                        z: require_usize(msg, "z")?,
                    }
                } else {
                    return Err(Error::invalid_parameter(
                        "set_policy",
                        "expected percentage | two_sided | pixels+pixels_per_item | rmin+rmax+z",
                    ));
                };
                Request::SetDisplayPolicy(policy)
            }
            "set_weight" => Request::SetWeight {
                window: require_usize(msg, "window")?,
                weight: require_f64(msg, "weight")?,
            },
            "move_slider" => Request::MoveSlider {
                window: require_usize(msg, "window")?,
                op: compare_op_parse(require_str(msg, "cmp")?)?,
                value: require_f64(msg, "value")?,
            },
            "drag_slider" => Request::DragSlider {
                window: require_usize(msg, "window")?,
                op: compare_op_parse(require_str(msg, "cmp")?)?,
                value: require_f64(msg, "value")?,
            },
            "set_window_size" => Request::SetWindowSize {
                w: require_usize(msg, "w")?,
                h: require_usize(msg, "h")?,
            },
            "summary" => Request::Summary,
            "render" => Request::Render(RenderFormat::parse(
                msg.get("format").and_then(Json::as_str).unwrap_or("ascii"),
            )?),
            other => {
                return Err(Error::invalid_parameter(
                    "op",
                    format!("unknown session op '{other}'"),
                ))
            }
        })
    }
}

impl Response {
    /// Encode the wire form used by `visdb-server`. ASCII frames travel
    /// as plain text, PPM frames as base64.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok => Json::obj([("ok", Json::Bool(true))]),
            Response::Summary(s) => Json::obj([
                ("ok", Json::Bool(true)),
                (
                    "summary",
                    Json::obj([
                        ("objects", s.objects.into()),
                        ("displayed", s.displayed.into()),
                        ("exact", s.exact.into()),
                        ("windows", s.windows.into()),
                    ]),
                ),
            ]),
            Response::Drag {
                displayed,
                exact,
                incremental,
            } => Json::obj([
                ("ok", Json::Bool(true)),
                (
                    "drag",
                    Json::obj([
                        ("displayed", (*displayed).into()),
                        ("exact", (*exact).into()),
                        ("incremental", Json::Bool(*incremental)),
                    ]),
                ),
            ]),
            Response::Frame {
                format,
                width,
                height,
                bytes,
            } => {
                let data = match format {
                    RenderFormat::Ascii => String::from_utf8_lossy(bytes).into_owned(),
                    RenderFormat::Ppm => base64_encode(bytes),
                };
                Json::obj([
                    ("ok", Json::Bool(true)),
                    (
                        "frame",
                        Json::obj([
                            ("format", format.name().into()),
                            ("width", (*width).into()),
                            ("height", (*height).into()),
                            ("data", data.into()),
                        ]),
                    ),
                ])
            }
            Response::Error(msg) => {
                Json::obj([("ok", Json::Bool(false)), ("error", msg.as_str().into())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use visdb_query::connection::ConnectionRegistry;
    use visdb_storage::{Database, TableBuilder};
    use visdb_types::{Column, DataType};

    fn state(n: usize) -> SessionState {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        SessionState {
            session: Session::new(Arc::new(db), ConnectionRegistry::new()),
            dataset: "d".into(),
        }
    }

    #[test]
    fn full_interaction_round_trip() {
        let mut st = state(100);
        assert_eq!(execute(&mut st, &Request::Ping, None), Response::Ok);
        assert_eq!(
            execute(
                &mut st,
                &Request::SetQueryText("SELECT * FROM T WHERE x >= 90".into()),
                None
            ),
            Response::Ok
        );
        let summary = execute(&mut st, &Request::Summary, None);
        assert_eq!(
            summary,
            Response::Summary(SessionSummary {
                objects: 100,
                displayed: 25,
                exact: 10,
                windows: 1,
            })
        );
        // drag the slider down to 50: more exact answers
        assert_eq!(
            execute(
                &mut st,
                &Request::MoveSlider {
                    window: 0,
                    op: CompareOp::Ge,
                    value: 50.0
                },
                None
            ),
            Response::Ok
        );
        match execute(&mut st, &Request::Summary, None) {
            Response::Summary(s) => assert_eq!(s.exact, 50),
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn render_formats_produce_frames() {
        let mut st = state(64);
        execute(
            &mut st,
            &Request::SetQueryText("SELECT * FROM T WHERE x >= 32".into()),
            None,
        );
        execute(&mut st, &Request::SetWindowSize { w: 8, h: 8 }, None);
        for format in [RenderFormat::Ascii, RenderFormat::Ppm] {
            match execute(&mut st, &Request::Render(format), None) {
                Response::Frame {
                    format: f,
                    width,
                    height,
                    bytes,
                } => {
                    assert_eq!(f, format);
                    assert!(width >= 8 && height >= 8);
                    assert!(!bytes.is_empty());
                    if format == RenderFormat::Ppm {
                        assert!(bytes.starts_with(b"P6\n"));
                    }
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_leave_the_session_usable() {
        let mut st = state(10);
        // no query installed yet
        assert!(matches!(
            execute(&mut st, &Request::Summary, None),
            Response::Error(_)
        ));
        assert!(matches!(
            execute(&mut st, &Request::SetQueryText("SELECT".into()), None),
            Response::Error(_)
        ));
        assert_eq!(
            execute(
                &mut st,
                &Request::SetQueryText("SELECT * FROM T WHERE x >= 5".into()),
                None
            ),
            Response::Ok
        );
        assert!(matches!(
            execute(&mut st, &Request::Summary, None),
            Response::Summary(_)
        ));
    }

    #[test]
    fn render_key_tracks_every_visual_input() {
        let mut st = state(10);
        execute(
            &mut st,
            &Request::SetQueryText("SELECT * FROM T WHERE x >= 5".into()),
            None,
        );
        let base = render_key(&st, RenderFormat::Ascii);
        assert!(base.contains("[x >= 5]"));
        // a tuple selection changes the rendered highlight, so the key
        let selected = {
            st.session.select_tuple(7).unwrap();
            render_key(&st, RenderFormat::Ascii)
        };
        assert_ne!(base, selected);
        st.session.clear_selection();
        assert_eq!(base, render_key(&st, RenderFormat::Ascii));
        // a different format, policy, size or weight gives a new key
        assert_ne!(base, render_key(&st, RenderFormat::Ppm));
        execute(&mut st, &Request::SetWindowSize { w: 16, h: 16 }, None);
        let resized = render_key(&st, RenderFormat::Ascii);
        assert_ne!(base, resized);
        execute(
            &mut st,
            &Request::SetDisplayPolicy(DisplayPolicy::Percentage(80.0)),
            None,
        );
        assert_ne!(resized, render_key(&st, RenderFormat::Ascii));
        execute(
            &mut st,
            &Request::SetWeight {
                window: 0,
                weight: 0.5,
            },
            None,
        );
        let reweighted = render_key(&st, RenderFormat::Ascii);
        assert!(reweighted.contains("(weight 0.5)"));
    }

    #[test]
    fn wire_requests_decode() {
        let msg = parse(r#"{"op":"move_slider","window":0,"cmp":">=","value":15.5}"#).unwrap();
        assert_eq!(
            Request::from_json(&msg).unwrap(),
            Request::MoveSlider {
                window: 0,
                op: CompareOp::Ge,
                value: 15.5
            }
        );
        let msg = parse(r#"{"op":"set_policy","percentage":40}"#).unwrap();
        assert_eq!(
            Request::from_json(&msg).unwrap(),
            Request::SetDisplayPolicy(DisplayPolicy::Percentage(40.0))
        );
        let msg = parse(r#"{"op":"render","format":"ppm"}"#).unwrap();
        assert_eq!(
            Request::from_json(&msg).unwrap(),
            Request::Render(RenderFormat::Ppm)
        );
        for bad in [
            r#"{"op":"nope"}"#,
            r#"{"op":"set_weight","window":0}"#,
            r#"{"op":"set_policy"}"#,
            r#"{"op":"move_slider","window":0,"cmp":"~","value":1}"#,
            r#"{"text":"no op"}"#,
        ] {
            assert!(Request::from_json(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn wire_responses_encode() {
        let r = Response::Error("boom".into()).to_json().to_string();
        assert_eq!(r, r#"{"error":"boom","ok":false}"#);
        let frame = Response::Frame {
            format: RenderFormat::Ppm,
            width: 2,
            height: 1,
            bytes: Arc::new(b"P6 raw".to_vec()),
        };
        let encoded = frame.to_json();
        assert_eq!(
            encoded.get("frame").unwrap().get("data").unwrap().as_str(),
            Some(base64_encode(b"P6 raw").as_str())
        );
    }
}
