//! The concurrent query service: datasets, shared runtime, dispatch.
//!
//! A [`Service`] owns
//!
//! * a registry of named datasets (`Arc<Database>` + connections) shared
//!   by every session at zero copy cost,
//! * a [`SessionManager`] handing out [`SessionId`]s with LRU /
//!   idle eviction,
//! * a budgeted [`visdb_exec::Runtime`] — the **same** pool that
//!   executes `visdb_relevance`'s chunked row walks, so request
//!   dispatch and pipeline fan-out share one global thread budget
//!   instead of multiplying (the pre-runtime design had a fixed
//!   service pool *plus* per-walk scoped spawns, which oversubscribed
//!   multi-core boxes under concurrent large queries), and
//! * a shared [`QueryCache`] so identical renders from different users
//!   skip the pipeline entirely.
//!
//! ## Scheduling
//!
//! Work items are *session drains*, not individual requests. A
//! submission enqueues the request in the session's FIFO mailbox and
//! spawns one drain job on the runtime unless the slot is already
//! scheduled; the worker running the drain empties the mailbox in
//! order. The result: at most one worker executes a given session at a
//! time (so a slider drag followed by a render observes the drag — the
//! paper's interactive semantics), while distinct sessions run on as
//! many workers as the budget allows. When a drain reaches a chunked
//! pipeline pass, the fan-out lands on the *same* runtime: the draining
//! worker participates in its own batch and idle siblings steal, so the
//! thread count stays pinned at the budget end to end.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver};
use visdb_exec::Runtime;
use visdb_obs::{Counter, Histogram, Registry, Snapshot};
use visdb_query::connection::ConnectionRegistry;
use visdb_relevance::{Materialization, PhaseTimings};
use visdb_storage::Database;
use visdb_types::{Error, Result};

use crate::api::{execute, Request, Response};
use crate::cache::{CacheStats, ProjectionCache, QueryCache, WindowCache};
use crate::manager::{Envelope, SessionId, SessionManager, SessionOptions, SessionSlot};

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The service's global thread budget (≥ 1): worker threads in the
    /// shared runtime that executes *both* request dispatch and the
    /// pipeline's chunked row walks. No request — however many large
    /// queries run concurrently — can push the live thread count past
    /// this.
    pub workers: usize,
    /// Horizontal partitions per pipeline run (0 or 1 disables
    /// partitioned execution). Outputs are bit-identical either way;
    /// partitioning only changes how the work is scheduled.
    pub partitions: usize,
    /// Maximum live sessions before LRU eviction.
    pub max_sessions: usize,
    /// Idle horizon for [`Service::evict_idle_sessions`].
    pub idle_timeout: Duration,
    /// Shared query-result cache capacity (0 disables it).
    pub cache_capacity: usize,
    /// Shared predicate-window cache capacity in windows (0 disables
    /// cross-session window reuse).
    pub window_cache_capacity: usize,
    /// Shared sorted-projection cache capacity in projections (0
    /// disables cross-session slider-index reuse).
    pub projection_cache_capacity: usize,
    /// Streaming vs materialized pipeline execution for every session
    /// (see [`visdb_relevance::Materialization`]). Outputs are
    /// bit-identical; `Streaming` trades the shared window cache for
    /// zero-materialization execution (smaller per-query footprint,
    /// no cross-session window reuse).
    pub materialization: Materialization,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            partitions: 0,
            max_sessions: 1024,
            idle_timeout: Duration::from_secs(300),
            cache_capacity: 256,
            window_cache_capacity: 512,
            projection_cache_capacity: 64,
            materialization: Materialization::Auto,
        }
    }
}

struct Dataset {
    db: Arc<Database>,
    registry: ConnectionRegistry,
    /// Cache scope: `name#generation`. Generations are unique per
    /// service, so sessions created over a *replaced* dataset of the
    /// same name can never share cache entries with sessions still
    /// holding the old data (they keep their old scope).
    scope: String,
}

/// A response that has been dispatched but not necessarily produced yet.
pub struct PendingResponse {
    rx: Receiver<Response>,
}

impl PendingResponse {
    /// Block until the worker produces the response.
    pub fn wait(self) -> Result<Response> {
        self.rx
            .recv()
            .map_err(|_| Error::Internal("service worker dropped a reply".into()))
    }
}

/// Per-op request telemetry plus the pipeline-phase histograms, with
/// every handle resolved once at service start-up — the hot path does
/// no registry lookups, only atomic increments.
pub(crate) struct ServiceObs {
    /// One `(op name, request counter, latency histogram)` per wire op.
    ops: Vec<(&'static str, Arc<Counter>, Arc<Histogram>)>,
    /// `pipeline.phase.{distance,fit,normalize_combine,rank}`
    /// nanosecond histograms, fed by the traces of fresh computations.
    phases: [Arc<Histogram>; 4],
}

/// Every wire op, including the service-level `metrics`.
const OPS: [&str; 10] = [
    "ping",
    "set_query",
    "set_policy",
    "set_weight",
    "move_slider",
    "drag_slider",
    "set_window_size",
    "summary",
    "render",
    "metrics",
];

const PHASES: [&str; 4] = ["distance", "fit", "normalize_combine", "rank"];

impl ServiceObs {
    fn new(registry: &Registry) -> Self {
        ServiceObs {
            ops: OPS
                .iter()
                .map(|op| {
                    (
                        *op,
                        registry.counter(&format!("service.requests.{op}")),
                        registry.histogram(&format!("service.latency_ns.{op}")),
                    )
                })
                .collect(),
            phases: PHASES.map(|p| registry.histogram(&format!("pipeline.phase.{p}"))),
        }
    }

    /// Count one finished request and record its wall time.
    fn record_op(&self, op: &str, elapsed: Duration) {
        if let Some((_, count, latency)) = self.ops.iter().find(|(name, _, _)| *name == op) {
            count.inc();
            latency.record_duration(elapsed);
        }
    }

    /// Feed one pipeline run's phase timings into the service-wide
    /// per-phase histograms.
    fn record_phases(&self, timings: &PhaseTimings) {
        let [distance, fit, normalize_combine, rank] = &self.phases;
        distance.record_duration(timings.distance);
        fit.record_duration(timings.fit);
        normalize_combine.record_duration(timings.normalize_combine);
        rank.record_duration(timings.rank);
    }
}

/// A one-call summary of the service's own counters — the programmatic
/// sibling of the full [`Service::metrics_snapshot`], for callers (and
/// tests) that want typed fields instead of a metric-name map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTelemetry {
    /// Shared query-result cache counters.
    pub query_cache: CacheStats,
    /// Shared predicate-window cache counters (cross-session §6 reuse).
    pub window_cache: CacheStats,
    /// Shared sorted-projection cache counters.
    pub projection_cache: CacheStats,
    /// Live sessions right now.
    pub sessions_live: usize,
    /// Sessions created since the service started.
    pub sessions_created: usize,
    /// Sessions evicted by LRU or the idle sweep.
    pub sessions_evicted: usize,
    /// The shared execution runtime's counters.
    pub exec: visdb_exec::Metrics,
}

/// A concurrent multi-session query service over shared databases.
pub struct Service {
    datasets: Mutex<std::collections::HashMap<String, Dataset>>,
    generations: std::sync::atomic::AtomicU64,
    manager: SessionManager,
    cache: Arc<QueryCache>,
    window_cache: Arc<WindowCache>,
    projection_cache: Arc<ProjectionCache>,
    partitions: usize,
    materialization: Materialization,
    /// The telemetry registry every layer publishes into: exec-pool
    /// counters, cache hit/miss counters, session occupancy, per-op
    /// request counts and latency histograms, pipeline phase histograms.
    registry: Arc<Registry>,
    obs: Arc<ServiceObs>,
    /// The shared budgeted runtime. Dropping the service shuts it down;
    /// workers finish already-queued drains first.
    runtime: Runtime,
}

impl Service {
    /// Start the shared runtime.
    pub fn new(config: ServiceConfig) -> Self {
        let cache = Arc::new(QueryCache::new(config.cache_capacity));
        let window_cache = Arc::new(WindowCache::new(config.window_cache_capacity));
        let projection_cache = Arc::new(ProjectionCache::new(config.projection_cache_capacity));
        let manager = SessionManager::new(config.max_sessions, config.idle_timeout);
        let runtime = Runtime::new(config.workers.max(1));
        let registry = Arc::new(Registry::new());
        runtime.register_metrics(&registry);
        manager.register_metrics(&registry);
        cache.register_metrics(&registry, "cache.query");
        window_cache.register_metrics(&registry, "cache.window");
        projection_cache.register_metrics(&registry, "cache.projection");
        let obs = Arc::new(ServiceObs::new(&registry));
        Service {
            datasets: Mutex::new(std::collections::HashMap::new()),
            generations: std::sync::atomic::AtomicU64::new(1),
            manager,
            cache,
            window_cache,
            projection_cache,
            partitions: config.partitions,
            materialization: config.materialization,
            registry,
            obs,
            runtime,
        }
    }

    /// Make a database available to sessions under `name` (replacing any
    /// previous dataset of that name for *new* sessions; existing
    /// sessions keep their Arc).
    pub fn register_dataset(
        &self,
        name: impl Into<String>,
        db: Arc<Database>,
        registry: ConnectionRegistry,
    ) {
        let name = name.into();
        // stale protection is the generation in the cache scopes;
        // dropping the replaced dataset's entries just frees memory
        self.cache.invalidate_dataset(&name);
        self.window_cache.invalidate_dataset(&name);
        self.projection_cache.invalidate_dataset(&name);
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        let scope = format!("{name}#{generation}");
        self.datasets
            .lock()
            .expect("dataset registry poisoned")
            .insert(
                name,
                Dataset {
                    db,
                    registry,
                    scope,
                },
            );
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .lock()
            .expect("dataset registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Open a session over a registered dataset.
    pub fn create_session(&self, dataset: &str) -> Result<SessionId> {
        let guard = self.datasets.lock().expect("dataset registry poisoned");
        let ds = guard.get(dataset).ok_or_else(|| {
            Error::invalid_parameter("dataset", format!("unknown dataset '{dataset}'"))
        })?;
        let options = SessionOptions {
            windows: self
                .window_cache
                .is_enabled()
                .then(|| Arc::clone(&self.window_cache)),
            projections: self
                .projection_cache
                .is_enabled()
                .then(|| Arc::clone(&self.projection_cache)),
            partitions: self.partitions,
            materialization: self.materialization,
            // traced sessions make `trace: true` requests answerable
            // from the cached result and feed the per-phase histograms;
            // the cost is a few clock reads per full pipeline run
            collect_trace: true,
        };
        Ok(self.manager.create(
            ds.scope.clone(),
            Arc::clone(&ds.db),
            ds.registry.clone(),
            options,
        ))
    }

    /// Close a session explicitly. Returns whether it was live.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.manager.remove(id)
    }

    /// Dispatch a request and block for its response.
    pub fn submit(&self, id: SessionId, request: Request) -> Result<Response> {
        self.submit_async(id, request)?.wait()
    }

    /// Dispatch a request without waiting. Requests for one session apply
    /// in submission order; distinct sessions run in parallel.
    pub fn submit_async(&self, id: SessionId, request: Request) -> Result<PendingResponse> {
        // the metrics op is service-level: it reads the registry, never
        // a session, so it is answered inline instead of queueing behind
        // a possibly busy mailbox (an explain request must not wait for
        // the query it wants to explain)
        if matches!(request, Request::Metrics) {
            let (reply, rx) = channel::unbounded();
            let _ = reply.send(Response::Metrics(Box::new(self.metrics_snapshot())));
            return Ok(PendingResponse { rx });
        }
        let slot = self.manager.get(id).ok_or_else(|| {
            Error::invalid_parameter("session", format!("unknown or evicted {id}"))
        })?;
        let (reply, rx) = channel::unbounded();
        slot.mailbox
            .lock()
            .expect("mailbox poisoned")
            .push_back(Envelope { request, reply });
        if !slot.scheduled.swap(true, Ordering::SeqCst) {
            let cache = Arc::clone(&self.cache);
            let obs = Arc::clone(&self.obs);
            self.runtime
                .spawn(move || drain_mailbox(&slot, &cache, &obs));
        }
        Ok(PendingResponse { rx })
    }

    /// Evict sessions idle longer than the configured timeout; returns
    /// how many were evicted.
    pub fn evict_idle_sessions(&self) -> usize {
        self.manager.evict_idle()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.manager.len()
    }

    /// The global thread budget (worker threads in the shared runtime).
    pub fn workers(&self) -> usize {
        self.runtime.budget()
    }

    /// The shared execution runtime (exposed for observability and the
    /// oversubscription regression tests).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// One consistent snapshot of the service's own counters: all three
    /// cache stats, session occupancy, and the exec-pool metrics.
    pub fn telemetry(&self) -> ServiceTelemetry {
        ServiceTelemetry {
            query_cache: self.cache.stats(),
            window_cache: self.window_cache.stats(),
            projection_cache: self.projection_cache.stats(),
            sessions_live: self.manager.len(),
            sessions_created: self.manager.created_count(),
            sessions_evicted: self.manager.evicted_count(),
            exec: self.runtime.metrics(),
        }
    }

    /// The full telemetry registry: every metric any layer published —
    /// also reachable through [`Service::metrics_snapshot`] and the
    /// `metrics` server op.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshot every registered metric (what `Request::Metrics`
    /// returns). Counts as one `metrics` request.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let started = Instant::now();
        let snapshot = self.registry.snapshot();
        self.obs.record_op("metrics", started.elapsed());
        snapshot
    }

    /// Shared query-result cache counters.
    #[deprecated(note = "use Service::telemetry().query_cache")]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Shared predicate-window cache counters (cross-session §6 reuse).
    #[deprecated(note = "use Service::telemetry().window_cache")]
    pub fn window_cache_stats(&self) -> CacheStats {
        self.window_cache.stats()
    }

    /// Shared sorted-projection cache counters (cross-session slider
    /// index reuse).
    #[deprecated(note = "use Service::telemetry().projection_cache")]
    pub fn projection_cache_stats(&self) -> CacheStats {
        self.projection_cache.stats()
    }
}

/// Execute a session's queued requests in FIFO order. Exactly one worker
/// runs this for a given slot at a time (`scheduled` guards entry); the
/// handshake at the empty-mailbox exit ensures a request that raced with
/// the exit is picked up — by this worker or by a rescheduled slot.
fn drain_mailbox(slot: &Arc<SessionSlot>, cache: &QueryCache, obs: &ServiceObs) {
    loop {
        let envelope = slot.mailbox.lock().expect("mailbox poisoned").pop_front();
        let Some(envelope) = envelope else {
            slot.scheduled.store(false, Ordering::SeqCst);
            let refilled = !slot.mailbox.lock().expect("mailbox poisoned").is_empty();
            // if a submitter slipped in after the pop but before the
            // store, either it saw scheduled=true (we must keep going) or
            // it re-sent the slot (another worker owns it; stop)
            if refilled && !slot.scheduled.swap(true, Ordering::SeqCst) {
                continue;
            }
            return;
        };
        // a panic must not unwind through the worker loop: it would kill
        // the thread and strand the slot with `scheduled` stuck at true,
        // wedging the session and hanging every waiting submitter
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut state = match slot.state.lock() {
                Ok(g) => g,
                // a previous request panicked mid-execution; the session
                // is suspect but the server must keep serving others
                Err(poisoned) => poisoned.into_inner(),
            };
            // phase histograms must count each pipeline run once: a run
            // happened iff this request computed a result the session
            // did not have (cached results and fast-path drags re-report
            // the *previous* run's trace)
            let fresh = state.session.cached_result().is_none();
            let started = Instant::now();
            let response = execute(&mut state, &envelope.request, Some(cache));
            obs.record_op(envelope.request.op_name(), started.elapsed());
            if fresh {
                if let Some(trace) = state.session.last_trace() {
                    obs.record_phases(&trace.phases);
                }
            }
            response
        }))
        .unwrap_or_else(|_| Response::Error("internal error: request execution panicked".into()));
        // a dropped PendingResponse just means nobody wants the answer
        let _ = envelope.reply.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RenderFormat;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn ramp_db(n: usize) -> Arc<Database> {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("ramp");
        db.add_table(b.build());
        Arc::new(db)
    }

    fn service(workers: usize) -> Service {
        let s = Service::new(ServiceConfig {
            workers,
            ..Default::default()
        });
        s.register_dataset("ramp", ramp_db(200), ConnectionRegistry::new());
        s
    }

    #[test]
    fn end_to_end_query_over_the_pool() {
        let s = service(2);
        let id = s.create_session("ramp").unwrap();
        assert_eq!(s.submit(id, Request::Ping).unwrap(), Response::Ok);
        assert_eq!(
            s.submit(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into())
            )
            .unwrap(),
            Response::Ok
        );
        match s.submit(id, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => {
                assert_eq!(sum.objects, 200);
                assert_eq!(sum.exact, 50);
            }
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn unknown_dataset_and_session_are_errors() {
        let s = service(1);
        assert!(s.create_session("nope").is_err());
        assert!(s.submit(SessionId(999), Request::Ping).is_err());
        let id = s.create_session("ramp").unwrap();
        assert!(s.close_session(id));
        assert!(s.submit(id, Request::Ping).is_err());
    }

    #[test]
    fn async_submissions_for_one_session_apply_in_order() {
        let s = service(4);
        let id = s.create_session("ramp").unwrap();
        let pending: Vec<PendingResponse> = vec![
            s.submit_async(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 100".into()),
            )
            .unwrap(),
            s.submit_async(
                id,
                Request::MoveSlider {
                    window: 0,
                    op: visdb_query::ast::CompareOp::Ge,
                    value: 180.0,
                },
            )
            .unwrap(),
            s.submit_async(id, Request::Summary { trace: false })
                .unwrap(),
        ];
        let mut responses = pending.into_iter().map(|p| p.wait().unwrap());
        assert_eq!(responses.next().unwrap(), Response::Ok);
        assert_eq!(responses.next().unwrap(), Response::Ok);
        match responses.next().unwrap() {
            // the summary observes the slider move (20 exact answers),
            // not the original query (100)
            Response::Summary(sum) => assert_eq!(sum.exact, 20),
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn a_request_burst_across_sessions_all_completes() {
        let s = service(4);
        let ids: Vec<SessionId> = (0..16).map(|_| s.create_session("ramp").unwrap()).collect();
        let pending: Vec<(usize, PendingResponse)> = ids
            .iter()
            .enumerate()
            .flat_map(|(i, &id)| {
                let threshold = 10 * i;
                [
                    (
                        i,
                        s.submit_async(
                            id,
                            Request::SetQueryText(format!(
                                "SELECT * FROM T WHERE x >= {threshold}"
                            )),
                        )
                        .unwrap(),
                    ),
                    (
                        i,
                        s.submit_async(id, Request::Summary { trace: false })
                            .unwrap(),
                    ),
                ]
            })
            .collect();
        for (i, p) in pending {
            match p.wait().unwrap() {
                Response::Ok => {}
                Response::Summary(sum) => assert_eq!(sum.exact, 200 - 10 * i),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn reregistering_a_dataset_invalidates_its_cached_frames() {
        let s = service(2);
        let a = s.create_session("ramp").unwrap();
        s.submit(
            a,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
        )
        .unwrap();
        let old_frame = s.submit(a, Request::Render(RenderFormat::Ppm)).unwrap();

        // same name, different data: 400 rows instead of 200
        s.register_dataset("ramp", ramp_db(400), ConnectionRegistry::new());
        let b = s.create_session("ramp").unwrap();
        s.submit(
            b,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
        )
        .unwrap();
        let new_frame = s.submit(b, Request::Render(RenderFormat::Ppm)).unwrap();

        assert_eq!(
            s.telemetry().query_cache.hits,
            0,
            "stale frame must not be served"
        );
        assert_ne!(old_frame, new_frame);
        match s.submit(b, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => assert_eq!(sum.objects, 400),
            other => panic!("expected summary, got {other:?}"),
        }

        // session A (still holding the old 200-row Arc) renders again,
        // re-populating the cache — its generation-scoped key must not
        // leak to a fresh session over the new data
        let old_again = s.submit(a, Request::Render(RenderFormat::Ppm)).unwrap();
        assert_eq!(old_again, old_frame);
        let c = s.create_session("ramp").unwrap();
        s.submit(
            c,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
        )
        .unwrap();
        let hits_before = s.telemetry().query_cache.hits;
        let newest = s.submit(c, Request::Render(RenderFormat::Ppm)).unwrap();
        assert_eq!(newest, new_frame);
        // c's render hit b's (same-generation) entry, never a's
        assert_eq!(s.telemetry().query_cache.hits, hits_before + 1);
    }

    #[test]
    fn shared_cache_serves_identical_renders_across_sessions() {
        let s = service(2);
        let a = s.create_session("ramp").unwrap();
        let b = s.create_session("ramp").unwrap();
        for id in [a, b] {
            s.submit(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
            )
            .unwrap();
        }
        let fa = s.submit(a, Request::Render(RenderFormat::Ppm)).unwrap();
        let before = s.telemetry().query_cache;
        let fb = s.submit(b, Request::Render(RenderFormat::Ppm)).unwrap();
        let after = s.telemetry().query_cache;
        assert_eq!(fa, fb, "cached frame must be identical");
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn dropping_the_service_joins_workers_cleanly() {
        let s = service(4);
        let id = s.create_session("ramp").unwrap();
        let _ = s
            .submit_async(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 1".into()),
            )
            .unwrap();
        drop(s); // must not hang or panic
    }
}
