//! The concurrent query service: datasets, shared runtime, dispatch.
//!
//! A [`Service`] owns
//!
//! * a registry of named datasets (`Arc<Database>` + connections) shared
//!   by every session at zero copy cost,
//! * a [`SessionManager`] handing out [`SessionId`]s with LRU /
//!   idle eviction,
//! * a budgeted [`visdb_exec::Runtime`] — the **same** pool that
//!   executes `visdb_relevance`'s chunked row walks, so request
//!   dispatch and pipeline fan-out share one global thread budget
//!   instead of multiplying (the pre-runtime design had a fixed
//!   service pool *plus* per-walk scoped spawns, which oversubscribed
//!   multi-core boxes under concurrent large queries), and
//! * a shared [`QueryCache`] so identical renders from different users
//!   skip the pipeline entirely.
//!
//! ## Scheduling
//!
//! Work items are *session drains*, not individual requests. A
//! submission enqueues the request in the session's FIFO mailbox and
//! spawns one drain job on the runtime unless the slot is already
//! scheduled; the worker running the drain empties the mailbox in
//! order. The result: at most one worker executes a given session at a
//! time (so a slider drag followed by a render observes the drag — the
//! paper's interactive semantics), while distinct sessions run on as
//! many workers as the budget allows. When a drain reaches a chunked
//! pipeline pass, the fan-out lands on the *same* runtime: the draining
//! worker participates in its own batch and idle siblings steal, so the
//! thread count stays pinned at the budget end to end.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver};
use visdb_core::{parse_projection_key, projection_key, BandRebase};
use visdb_exec::{CancelToken, Interrupt, Runtime};
use visdb_index::ProjectionSource;
use visdb_obs::{Counter, Gauge, Histogram, Registry, Snapshot};
use visdb_query::connection::ConnectionRegistry;
use visdb_relevance::{
    extend_window, key_scope, window_key, Materialization, PhaseTimings, WindowSource,
};
use visdb_storage::csv::read_csv;
use visdb_storage::{Database, DeltaChain, Row};
use visdb_types::{Error, Result};

use crate::api::{execute, ErrorKind, Request, Response};
use crate::cache::{CacheStats, ProjectionCache, QueryCache, WindowCache};
use crate::manager::{Envelope, SessionId, SessionManager, SessionOptions, SessionSlot};

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The service's global thread budget (≥ 1): worker threads in the
    /// shared runtime that executes *both* request dispatch and the
    /// pipeline's chunked row walks. No request — however many large
    /// queries run concurrently — can push the live thread count past
    /// this.
    pub workers: usize,
    /// Horizontal partitions per pipeline run (0 or 1 disables
    /// partitioned execution). Outputs are bit-identical either way;
    /// partitioning only changes how the work is scheduled.
    pub partitions: usize,
    /// Maximum live sessions before LRU eviction.
    pub max_sessions: usize,
    /// Idle horizon for [`Service::evict_idle_sessions`].
    pub idle_timeout: Duration,
    /// Shared query-result cache capacity (0 disables it).
    pub cache_capacity: usize,
    /// Shared predicate-window cache capacity in windows (0 disables
    /// cross-session window reuse).
    pub window_cache_capacity: usize,
    /// Shared sorted-projection cache capacity in projections (0
    /// disables cross-session slider-index reuse).
    pub projection_cache_capacity: usize,
    /// Streaming vs materialized pipeline execution for every session
    /// (see [`visdb_relevance::Materialization`]). Outputs are
    /// bit-identical; `Streaming` trades the shared window cache for
    /// zero-materialization execution (smaller per-query footprint,
    /// no cross-session window reuse).
    pub materialization: Materialization,
    /// Admission watermark: when this many queued-but-unfinished
    /// requests are already pending across all sessions, new
    /// submissions are *shed* — answered immediately with
    /// `Response::Error { kind: Shed, retry_after_ms, .. }` instead of
    /// queued. In-flight and already-queued work always runs to
    /// completion; shedding only refuses *new* work, so the service
    /// degrades by answering "come back later" rather than by letting
    /// queue latency grow without bound. The default is high enough
    /// that only genuine overload trips it.
    pub pending_watermark: usize,
    /// Deadline applied to every request that does not carry its own
    /// [`SubmitOptions::deadline`]. `None` (the default) means requests
    /// without an explicit deadline run to completion.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            partitions: 0,
            max_sessions: 1024,
            idle_timeout: Duration::from_secs(300),
            cache_capacity: 256,
            window_cache_capacity: 512,
            projection_cache_capacity: 64,
            materialization: Materialization::Auto,
            pending_watermark: 4096,
            default_deadline: None,
        }
    }
}

struct Dataset {
    db: Arc<Database>,
    registry: ConnectionRegistry,
    /// Cache scope: `name#base_gen.chain_len` (the delta chain's tag).
    /// Base generations are unique per service, so sessions created over
    /// a *replaced* dataset of the same name can never share cache
    /// entries with sessions still holding the old data; the chain
    /// suffix rotates the scope on every append, which is what makes the
    /// O(Δ) cache migration of [`Service::append_rows`] safe — stale
    /// keys simply never match again.
    scope: String,
    /// Append bookkeeping behind the scope tag: base generation,
    /// per-append row watermarks, compaction count.
    chain: DeltaChain,
}

/// Appends per dataset before the delta chain is folded into a new base
/// generation (dropping — rather than migrating — the derived cache
/// artifacts, so chains cannot grow without bound).
const COMPACTION_THRESHOLD: usize = 8;

/// A response that has been dispatched but not necessarily produced yet.
pub struct PendingResponse {
    rx: Receiver<Response>,
}

impl PendingResponse {
    /// Block until the worker produces the response.
    pub fn wait(self) -> Result<Response> {
        self.rx
            .recv()
            .map_err(|_| Error::Internal("service worker dropped a reply".into()))
    }
}

/// Per-request dispatch options (see [`Service::submit_opts`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Deadline for this request, counted from admission. Overrides the
    /// service-wide [`ServiceConfig::default_deadline`]. An expired
    /// request stops at the pipeline's next per-chunk poll and answers
    /// `Response::Error { kind: DeadlineExceeded, .. }`; one still
    /// queued when its deadline passes is answered without executing.
    pub deadline: Option<Duration>,
    /// Caller-chosen id making the request addressable by
    /// [`Service::cancel`] (the wire layer threads the request `"id"`
    /// through here). Ids are scoped per session; reusing one after the
    /// earlier request finished is fine.
    pub request_id: Option<u64>,
}

/// Overload and interruption bookkeeping: the pending-work gauge the
/// shed decision reads, the in-flight token table the `cancel` op
/// resolves against, and the degradation counters.
pub(crate) struct Admission {
    /// Queued-but-unfinished requests across every session
    /// (`service.pending_depth`). Incremented at admission, decremented
    /// when the drain finishes the envelope — whatever the outcome.
    pending: Arc<Gauge>,
    /// Shed threshold ([`ServiceConfig::pending_watermark`]).
    watermark: usize,
    /// `service.shed` — submissions refused at admission.
    shed: Arc<Counter>,
    /// `service.cancelled` — requests that ended with `kind: Cancelled`.
    cancelled: Arc<Counter>,
    /// `service.deadline_exceeded` — requests that ended with
    /// `kind: DeadlineExceeded`.
    deadline_exceeded: Arc<Counter>,
    /// `service.panics` — requests whose execution panicked (contained:
    /// the worker survives and the session slot is recycled).
    panics: Arc<Counter>,
    /// Cancel tokens of queued/executing requests, keyed by
    /// `(session id, request id)`. Only requests submitted with a
    /// `request_id` appear here.
    inflight: Mutex<HashMap<(u64, u64), CancelToken>>,
}

impl Admission {
    fn new(registry: &Registry, watermark: usize) -> Self {
        Admission {
            pending: registry.gauge("service.pending_depth"),
            watermark: watermark.max(1),
            shed: registry.counter("service.shed"),
            cancelled: registry.counter("service.cancelled"),
            deadline_exceeded: registry.counter("service.deadline_exceeded"),
            panics: registry.counter("service.panics"),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    fn inflight_lock(&self) -> std::sync::MutexGuard<'_, HashMap<(u64, u64), CancelToken>> {
        match self.inflight.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admit one request, or refuse it with a retry-after hint
    /// (milliseconds) when the pending depth has reached the watermark.
    /// The depth check and increment are not atomic together — the
    /// watermark is a soft limit, momentarily overshootable by one per
    /// concurrent submitter, which is exactly as precise as shedding
    /// needs to be.
    fn try_admit(&self) -> std::result::Result<(), u64> {
        let depth = self.pending.get();
        if depth >= self.watermark as i64 {
            self.shed.inc();
            // crude queueing-delay estimate: a few ms per pending
            // request, clamped to a sane polling interval
            return Err((depth as u64).saturating_mul(5).clamp(10, 2_000));
        }
        self.pending.inc();
        Ok(())
    }

    /// Mark one admitted envelope finished: drop the pending count and
    /// forget its in-flight token, and tally interrupted outcomes.
    fn finish(&self, key: Option<(u64, u64)>, response: &Response) {
        self.pending.dec();
        if let Some(key) = key {
            self.inflight_lock().remove(&key);
        }
        if let Response::Error { kind, .. } = response {
            match kind {
                ErrorKind::Cancelled => self.cancelled.inc(),
                ErrorKind::DeadlineExceeded => self.deadline_exceeded.inc(),
                _ => {}
            }
        }
    }
}

/// Per-op request telemetry plus the pipeline-phase histograms, with
/// every handle resolved once at service start-up — the hot path does
/// no registry lookups, only atomic increments.
pub(crate) struct ServiceObs {
    /// One `(op name, request counter, latency histogram)` per wire op.
    ops: Vec<(&'static str, Arc<Counter>, Arc<Histogram>)>,
    /// `pipeline.phase.{distance,fit,normalize_combine,rank}`
    /// nanosecond histograms, fed by the traces of fresh computations.
    phases: [Arc<Histogram>; 4],
}

/// Every wire op, including the service-level `metrics`, `cancel`,
/// `append_rows` and `append_csv`.
const OPS: [&str; 13] = [
    "ping",
    "set_query",
    "set_policy",
    "set_weight",
    "move_slider",
    "drag_slider",
    "set_window_size",
    "summary",
    "render",
    "metrics",
    "cancel",
    "append_rows",
    "append_csv",
];

const PHASES: [&str; 4] = ["distance", "fit", "normalize_combine", "rank"];

impl ServiceObs {
    fn new(registry: &Registry) -> Self {
        ServiceObs {
            ops: OPS
                .iter()
                .map(|op| {
                    (
                        *op,
                        registry.counter(&format!("service.requests.{op}")),
                        registry.histogram(&format!("service.latency_ns.{op}")),
                    )
                })
                .collect(),
            phases: PHASES.map(|p| registry.histogram(&format!("pipeline.phase.{p}"))),
        }
    }

    /// Count one finished request and record its wall time.
    fn record_op(&self, op: &str, elapsed: Duration) {
        if let Some((_, count, latency)) = self.ops.iter().find(|(name, _, _)| *name == op) {
            count.inc();
            latency.record_duration(elapsed);
        }
    }

    /// Feed one pipeline run's phase timings into the service-wide
    /// per-phase histograms.
    fn record_phases(&self, timings: &PhaseTimings) {
        let [distance, fit, normalize_combine, rank] = &self.phases;
        distance.record_duration(timings.distance);
        fit.record_duration(timings.fit);
        normalize_combine.record_duration(timings.normalize_combine);
        rank.record_duration(timings.rank);
    }
}

/// A one-call summary of the service's own counters — the programmatic
/// sibling of the full [`Service::metrics_snapshot`], for callers (and
/// tests) that want typed fields instead of a metric-name map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTelemetry {
    /// Shared query-result cache counters.
    pub query_cache: CacheStats,
    /// Shared predicate-window cache counters (cross-session §6 reuse).
    pub window_cache: CacheStats,
    /// Shared sorted-projection cache counters.
    pub projection_cache: CacheStats,
    /// Live sessions right now.
    pub sessions_live: usize,
    /// Sessions created since the service started.
    pub sessions_created: usize,
    /// Sessions evicted by LRU or the idle sweep.
    pub sessions_evicted: usize,
    /// Queued-but-unfinished requests right now.
    pub pending_depth: i64,
    /// Submissions refused at admission (watermark exceeded).
    pub shed: u64,
    /// Requests that ended cancelled.
    pub cancelled: u64,
    /// Requests that ended deadline-exceeded.
    pub deadline_exceeded: u64,
    /// Requests whose execution panicked (contained).
    pub panics: u64,
    /// The shared execution runtime's counters.
    pub exec: visdb_exec::Metrics,
}

/// A concurrent multi-session query service over shared databases.
pub struct Service {
    datasets: Mutex<std::collections::HashMap<String, Dataset>>,
    generations: std::sync::atomic::AtomicU64,
    manager: SessionManager,
    cache: Arc<QueryCache>,
    window_cache: Arc<WindowCache>,
    projection_cache: Arc<ProjectionCache>,
    partitions: usize,
    materialization: Materialization,
    /// The telemetry registry every layer publishes into: exec-pool
    /// counters, cache hit/miss counters, session occupancy, per-op
    /// request counts and latency histograms, pipeline phase histograms.
    registry: Arc<Registry>,
    obs: Arc<ServiceObs>,
    /// Overload/interruption bookkeeping shared with every drain.
    admission: Arc<Admission>,
    /// Deadline minted for requests submitted without one.
    default_deadline: Option<Duration>,
    /// The shared budgeted runtime. Dropping the service shuts it down;
    /// workers finish already-queued drains first.
    runtime: Runtime,
}

impl Service {
    /// Start the shared runtime.
    pub fn new(config: ServiceConfig) -> Self {
        let cache = Arc::new(QueryCache::new(config.cache_capacity));
        let window_cache = Arc::new(WindowCache::new(config.window_cache_capacity));
        let projection_cache = Arc::new(ProjectionCache::new(config.projection_cache_capacity));
        let manager = SessionManager::new(config.max_sessions, config.idle_timeout);
        let runtime = Runtime::new(config.workers.max(1));
        let registry = Arc::new(Registry::new());
        runtime.register_metrics(&registry);
        manager.register_metrics(&registry);
        cache.register_metrics(&registry, "cache.query");
        window_cache.register_metrics(&registry, "cache.window");
        projection_cache.register_metrics(&registry, "cache.projection");
        let obs = Arc::new(ServiceObs::new(&registry));
        let admission = Arc::new(Admission::new(&registry, config.pending_watermark));
        Service {
            datasets: Mutex::new(std::collections::HashMap::new()),
            generations: std::sync::atomic::AtomicU64::new(1),
            manager,
            cache,
            window_cache,
            projection_cache,
            partitions: config.partitions,
            materialization: config.materialization,
            registry,
            obs,
            admission,
            default_deadline: config.default_deadline,
            runtime,
        }
    }

    /// Make a database available to sessions under `name` (replacing any
    /// previous dataset of that name for *new* sessions; existing
    /// sessions keep their Arc).
    pub fn register_dataset(
        &self,
        name: impl Into<String>,
        db: Arc<Database>,
        registry: ConnectionRegistry,
    ) {
        let name = name.into();
        // stale protection is the generation in the cache scopes;
        // dropping the replaced dataset's entries just frees memory
        self.cache.invalidate_dataset(&name);
        self.window_cache.invalidate_dataset(&name);
        self.projection_cache.invalidate_dataset(&name);
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        let chain = DeltaChain::new(generation, db.total_rows());
        let scope = format!("{name}#{}", chain.tag());
        self.datasets
            .lock()
            .expect("dataset registry poisoned")
            .insert(
                name,
                Dataset {
                    db,
                    registry,
                    scope,
                    chain,
                },
            );
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .lock()
            .expect("dataset registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Open a session over a registered dataset.
    pub fn create_session(&self, dataset: &str) -> Result<SessionId> {
        let guard = self.datasets.lock().expect("dataset registry poisoned");
        let ds = guard.get(dataset).ok_or_else(|| {
            Error::invalid_parameter("dataset", format!("unknown dataset '{dataset}'"))
        })?;
        let options = SessionOptions {
            windows: self
                .window_cache
                .is_enabled()
                .then(|| Arc::clone(&self.window_cache)),
            projections: self
                .projection_cache
                .is_enabled()
                .then(|| Arc::clone(&self.projection_cache)),
            partitions: self.partitions,
            materialization: self.materialization,
            // traced sessions make `trace: true` requests answerable
            // from the cached result and feed the per-phase histograms;
            // the cost is a few clock reads per full pipeline run
            collect_trace: true,
        };
        Ok(self.manager.create(
            ds.scope.clone(),
            Arc::clone(&ds.db),
            ds.registry.clone(),
            options,
        ))
    }

    /// Close a session explicitly. Returns whether it was live.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.manager.remove(id)
    }

    /// Dispatch a request and block for its response.
    pub fn submit(&self, id: SessionId, request: Request) -> Result<Response> {
        self.submit_async(id, request)?.wait()
    }

    /// [`Service::submit`] with a per-request deadline / cancel id.
    pub fn submit_opts(
        &self,
        id: SessionId,
        request: Request,
        opts: SubmitOptions,
    ) -> Result<Response> {
        self.submit_async_opts(id, request, opts)?.wait()
    }

    /// Dispatch a request without waiting. Requests for one session apply
    /// in submission order; distinct sessions run in parallel.
    pub fn submit_async(&self, id: SessionId, request: Request) -> Result<PendingResponse> {
        self.submit_async_opts(id, request, SubmitOptions::default())
    }

    /// [`Service::submit_async`] with a per-request deadline / cancel
    /// id. The admission decision happens here: past the pending-work
    /// watermark the request is answered with a `Shed` error (and a
    /// `retry_after_ms` hint) instead of queued — `Ok` is returned
    /// either way, `Err` is reserved for unknown sessions.
    pub fn submit_async_opts(
        &self,
        id: SessionId,
        request: Request,
        opts: SubmitOptions,
    ) -> Result<PendingResponse> {
        // the metrics op is service-level: it reads the registry, never
        // a session, so it is answered inline instead of queueing behind
        // a possibly busy mailbox (an explain request must not wait for
        // the query it wants to explain)
        if matches!(request, Request::Metrics) {
            let (reply, rx) = channel::unbounded();
            let _ = reply.send(Response::Metrics(Box::new(self.metrics_snapshot())));
            return Ok(PendingResponse { rx });
        }
        let slot = self.manager.get(id).ok_or_else(|| {
            Error::invalid_parameter("session", format!("unknown or evicted {id}"))
        })?;
        let (reply, rx) = channel::unbounded();
        if let Err(retry_after_ms) = self.admission.try_admit() {
            let _ = reply.send(Response::shed(
                format!(
                    "service overloaded: {} requests pending (watermark {})",
                    self.admission.pending.get(),
                    self.admission.watermark
                ),
                retry_after_ms,
            ));
            return Ok(PendingResponse { rx });
        }
        // mint a cancel token when anything could interrupt the request:
        // a deadline, or a caller id the `cancel` op can aim at. Plain
        // submissions get no token and the pipeline's per-chunk polls
        // stay on their no-token fast path.
        let deadline = opts.deadline.or(self.default_deadline);
        let token = match deadline {
            Some(d) => Some(CancelToken::with_deadline(d)),
            None => opts.request_id.map(|_| CancelToken::new()),
        };
        let inflight_key = opts.request_id.map(|rid| (id.0, rid));
        if let (Some(key), Some(tok)) = (inflight_key, &token) {
            self.admission.inflight_lock().insert(key, tok.clone());
        }
        slot.mailbox
            .lock()
            .expect("mailbox poisoned")
            .push_back(Envelope {
                request,
                reply,
                token,
                inflight_key,
            });
        if !slot.scheduled.swap(true, Ordering::SeqCst) {
            let cache = Arc::clone(&self.cache);
            let obs = Arc::clone(&self.obs);
            let admission = Arc::clone(&self.admission);
            self.runtime
                .spawn(move || drain_mailbox(&slot, &cache, &obs, &admission));
        }
        Ok(PendingResponse { rx })
    }

    /// Cancel a queued or executing request by `(session, request id)`
    /// — the ids the request was submitted with. Returns whether a
    /// matching in-flight request was found. Cancellation is
    /// cooperative: an executing pipeline stops at its next per-chunk
    /// poll; a still-queued request is answered without executing.
    /// Either way the caller's [`PendingResponse`] resolves to
    /// `Response::Error { kind: Cancelled, .. }`.
    pub fn cancel(&self, id: SessionId, request_id: u64) -> bool {
        let started = Instant::now();
        let found = self
            .admission
            .inflight_lock()
            .get(&(id.0, request_id))
            .map(CancelToken::cancel)
            .is_some();
        self.obs.record_op("cancel", started.elapsed());
        found
    }

    /// Evict sessions idle longer than the configured timeout; returns
    /// how many were evicted.
    pub fn evict_idle_sessions(&self) -> usize {
        self.manager.evict_idle()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.manager.len()
    }

    /// The global thread budget (worker threads in the shared runtime).
    pub fn workers(&self) -> usize {
        self.runtime.budget()
    }

    /// The shared execution runtime (exposed for observability and the
    /// oversubscription regression tests).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// One consistent snapshot of the service's own counters: all three
    /// cache stats, session occupancy, and the exec-pool metrics.
    pub fn telemetry(&self) -> ServiceTelemetry {
        ServiceTelemetry {
            query_cache: self.cache.stats(),
            window_cache: self.window_cache.stats(),
            projection_cache: self.projection_cache.stats(),
            sessions_live: self.manager.len(),
            sessions_created: self.manager.created_count(),
            sessions_evicted: self.manager.evicted_count(),
            pending_depth: self.admission.pending.get(),
            shed: self.admission.shed.get(),
            cancelled: self.admission.cancelled.get(),
            deadline_exceeded: self.admission.deadline_exceeded.get(),
            panics: self.admission.panics.get(),
            exec: self.runtime.metrics(),
        }
    }

    /// The full telemetry registry: every metric any layer published —
    /// also reachable through [`Service::metrics_snapshot`] and the
    /// `metrics` server op.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshot every registered metric (what `Request::Metrics`
    /// returns). Counts as one `metrics` request.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let started = Instant::now();
        let snapshot = self.registry.snapshot();
        self.obs.record_op("metrics", started.elapsed());
        snapshot
    }

    /// Per-dataset delta-chain bookkeeping (the `stats` server op's
    /// `datasets` section), sorted by name.
    pub fn dataset_info(&self) -> Vec<DatasetInfo> {
        let guard = self.datasets.lock().expect("dataset registry poisoned");
        let mut infos: Vec<DatasetInfo> = guard
            .iter()
            .map(|(name, ds)| DatasetInfo {
                name: name.clone(),
                total_rows: ds.chain.total_rows(),
                base_gen: ds.chain.base_gen(),
                chain_len: ds.chain.chain_len(),
                delta_rows: ds.chain.delta_rows(),
                compactions: ds.chain.compactions(),
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// The (resolved table name, schema) an append against `dataset`
    /// would target — what the wire layer needs to type-check JSON rows
    /// before calling [`Service::append_rows`].
    pub fn table_schema(
        &self,
        dataset: &str,
        table: Option<&str>,
    ) -> Result<(String, visdb_types::Schema)> {
        let guard = self.datasets.lock().expect("dataset registry poisoned");
        let ds = guard.get(dataset).ok_or_else(|| {
            Error::invalid_parameter("dataset", format!("unknown dataset '{dataset}'"))
        })?;
        let table_name = resolve_table(ds, dataset, table)?;
        let schema = ds.db.table(&table_name)?.schema().clone();
        Ok((table_name, schema))
    }

    /// Append rows to one table of a registered dataset as a new **delta
    /// generation** — the paper's interactive loop under *growing* data.
    /// Everything derived is maintained in O(Δ), never rebuilt from
    /// scratch:
    ///
    /// * the database is cloned copy-on-append (readers keep their Arc;
    ///   column pushes are O(Δ)),
    /// * shared sorted projections over the appended table are *merged*
    ///   ([`visdb_index::SortedProjection::extended`]: O(Δ log Δ + n)
    ///   memcpy-dominated, vs O(n log n) rebuild),
    /// * shared predicate windows *extend* by evaluating only the
    ///   appended rows ([`visdb_relevance::extend_window`]), declining —
    ///   bit-exactly — whenever the appended rows shift the §5.2
    ///   normalization fit,
    /// * live sessions over the dataset are rebased
    ///   ([`visdb_core::Session::rebase`]): their §6 slider bands are
    ///   repaired by examining only the appended rows.
    ///
    /// Every [`COMPACTION_THRESHOLD`]-th append folds the chain into a
    /// fresh base generation and drops the derived artifacts instead.
    /// `table` may be omitted for single-table datasets. On any error
    /// the dataset is left exactly as it was.
    pub fn append_rows(
        &self,
        name: &str,
        table: Option<&str>,
        rows: Vec<Row>,
    ) -> Result<AppendOutcome> {
        let started = Instant::now();
        let outcome = self.append_rows_inner(name, table, rows);
        self.obs.record_op("append_rows", started.elapsed());
        outcome
    }

    /// [`Service::append_rows`] from headerless CSV text parsed against
    /// the table's **existing** schema (the append companion of the
    /// `load_csv` op's inference; empty cells are NULLs).
    pub fn append_csv(&self, name: &str, table: Option<&str>, csv: &str) -> Result<AppendOutcome> {
        let started = Instant::now();
        let outcome = (|| {
            let (table_name, schema) = {
                let guard = self.datasets.lock().expect("dataset registry poisoned");
                let ds = guard.get(name).ok_or_else(|| {
                    Error::invalid_parameter("dataset", format!("unknown dataset '{name}'"))
                })?;
                let table_name = resolve_table(ds, name, table)?;
                let schema = ds.db.table(&table_name)?.schema().clone();
                (table_name, schema)
            };
            let parsed = read_csv(&table_name, schema, csv.as_bytes())?;
            let rows: Vec<Row> = (0..parsed.len())
                .map(|i| parsed.row(i).expect("row index in range"))
                .collect();
            self.append_rows_inner(name, Some(&table_name), rows)
        })();
        self.obs.record_op("append_csv", started.elapsed());
        outcome
    }

    fn append_rows_inner(
        &self,
        name: &str,
        table: Option<&str>,
        rows: Vec<Row>,
    ) -> Result<AppendOutcome> {
        let mut guard = self.datasets.lock().expect("dataset registry poisoned");
        let ds = guard.get_mut(name).ok_or_else(|| {
            Error::invalid_parameter("dataset", format!("unknown dataset '{name}'"))
        })?;
        let table_name = resolve_table(ds, name, table)?;
        let old_n = ds.db.table(&table_name)?.len();
        let appended = rows.len();
        // copy-on-append: readers keep their Arc to the old generation
        // untouched; the append lands in a fresh clone (O(n) memcpy of
        // column buffers — the costly O(n log n) derived artifacts are
        // migrated, not rebuilt). Table::append_rows is atomic, so an
        // arity/type error here leaves the registered dataset untouched.
        let mut next = (*ds.db).clone();
        next.table_mut(&table_name)?.append_rows(rows)?;
        let new_db = Arc::new(next);
        let new_n = old_n + appended;
        let old_scope = ds.scope.clone();
        ds.chain.push_link(new_db.total_rows());
        let compacted = ds.chain.should_compact(COMPACTION_THRESHOLD);
        if compacted {
            let generation = self.generations.fetch_add(1, Ordering::Relaxed);
            ds.chain.compact(generation);
        }
        let new_scope = format!("{name}#{}", ds.chain.tag());
        ds.scope.clone_from(&new_scope);
        ds.db = Arc::clone(&new_db);
        let base_gen = ds.chain.base_gen();
        let chain_len = ds.chain.chain_len();
        let delta_rows = ds.chain.delta_rows();
        drop(guard);

        // old-generation rendered frames can never be requested again —
        // every live session moves to the new scope below — so free them
        self.cache.invalidate_dataset(name);
        let mut windows_extended = 0;
        let mut windows_declined = 0;
        let mut projections_merged = 0;
        if compacted {
            // fold the chain: drop the derived artifacts; the next
            // queries rebuild against the compacted base
            self.window_cache.invalidate_dataset(name);
            self.projection_cache.invalidate_dataset(name);
        } else {
            let table_ref = new_db.table(&table_name).expect("table just appended to");
            let delta_ids: Vec<usize> = (old_n..new_n).collect();
            let delta = table_ref.gather(table_name.as_str(), &delta_ids);
            for (key, window, recipe) in self.window_cache.drain_dataset(name) {
                if key_scope(&key) != Some(old_scope.as_str()) {
                    continue; // an even older generation: stale, drop
                }
                let Some(recipe) = recipe else {
                    windows_declined += 1; // not row-locally extendable
                    continue;
                };
                if recipe.table != table_name {
                    // other relations of the dataset are untouched: the
                    // entry survives verbatim under the new scope
                    if let Ok(t) = new_db.table(&recipe.table) {
                        let new_key =
                            window_key(&new_scope, t, recipe.budget, recipe.weight, &recipe.node);
                        self.window_cache.store(new_key, window, Some(recipe));
                    }
                    continue;
                }
                if recipe.rows != old_n {
                    windows_declined += 1;
                    continue;
                }
                match extend_window(&new_db, &delta, &window, &recipe) {
                    Some((extended, new_recipe)) => {
                        let new_key = window_key(
                            &new_scope,
                            table_ref,
                            new_recipe.budget,
                            new_recipe.weight,
                            &new_recipe.node,
                        );
                        self.window_cache.store(new_key, extended, Some(new_recipe));
                        windows_extended += 1;
                    }
                    // the appended rows shifted the §5.2 fit: old rows'
                    // normalization changes, so the next query must
                    // re-evaluate in full to stay bit-identical
                    None => windows_declined += 1,
                }
            }
            for (key, projection) in self.projection_cache.drain_dataset(name) {
                let Some((scope, tbl, rows, column)) = parse_projection_key(&key) else {
                    continue;
                };
                if scope != old_scope {
                    continue;
                }
                if tbl != table_name {
                    let new_key = projection_key(&new_scope, tbl, rows, column);
                    self.projection_cache.store(new_key, projection);
                    continue;
                }
                if rows != old_n {
                    continue;
                }
                let Ok(col) = table_ref.column_by_name(column) else {
                    continue;
                };
                let merged = Arc::new(projection.extended(new_n, |i| col.get_f64(i)));
                self.projection_cache
                    .store(projection_key(&new_scope, tbl, new_n, column), merged);
                projections_merged += 1;
            }
        }
        // move every live session of the old generation onto the new one
        // (workers hold a slot's state lock only while executing that
        // session's requests and never take the dataset or cache locks,
        // so this ordering cannot deadlock)
        let mut bands_repaired = 0;
        let mut bands_dropped = 0;
        for slot in self.manager.slots() {
            let mut state = match slot.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if state.dataset != old_scope {
                continue;
            }
            state.dataset.clone_from(&new_scope);
            match state.session.rebase(Arc::clone(&new_db), new_scope.clone()) {
                BandRebase::Repaired => bands_repaired += 1,
                BandRebase::Dropped => bands_dropped += 1,
                BandRebase::None => {}
            }
        }
        // delta-chain telemetry: appends are rare next to queries, so
        // get-or-create registry lookups are fine off the hot path
        self.registry.counter("delta.appends").inc();
        if compacted {
            self.registry.counter("delta.compactions").inc();
        }
        self.registry
            .counter("delta.windows_extended")
            .add(windows_extended as u64);
        self.registry
            .counter("delta.windows_recomputed")
            .add(windows_declined as u64);
        self.registry
            .counter("delta.projections_merged")
            .add(projections_merged as u64);
        self.registry
            .counter("delta.bands_repaired")
            .add(bands_repaired as u64);
        self.registry
            .counter("delta.bands_dropped")
            .add(bands_dropped as u64);
        self.registry
            .gauge(&format!("delta.chain_depth.{name}"))
            .set(chain_len as i64);
        self.registry
            .gauge(&format!("delta.rows.{name}"))
            .set(delta_rows as i64);
        Ok(AppendOutcome {
            dataset: name.to_string(),
            table: table_name,
            rows_appended: appended,
            total_rows: new_n,
            base_gen,
            chain_len,
            compacted,
            windows_extended,
            windows_declined,
            projections_merged,
            bands_repaired,
            bands_dropped,
        })
    }
}

/// Resolve the target table of an append: the explicit name, or the
/// dataset's only table.
fn resolve_table(ds: &Dataset, name: &str, table: Option<&str>) -> Result<String> {
    match table {
        Some(t) => Ok(t.to_string()),
        None => {
            let names = ds.db.table_names();
            match names.as_slice() {
                [only] => Ok((*only).to_string()),
                _ => Err(Error::invalid_parameter(
                    "table",
                    format!(
                        "dataset '{name}' has {} tables; specify which to append to",
                        names.len()
                    ),
                )),
            }
        }
    }
}

/// What one [`Service::append_rows`] / [`Service::append_csv`] call did:
/// the new chain position plus the incremental-maintenance counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Dataset appended to.
    pub dataset: String,
    /// Table the rows landed in.
    pub table: String,
    /// Rows in this delta.
    pub rows_appended: usize,
    /// The table's row count after the append.
    pub total_rows: usize,
    /// Base generation of the delta chain (rotates on compaction).
    pub base_gen: u64,
    /// Links in the chain after this append (0 right after compaction).
    pub chain_len: usize,
    /// Whether this append folded the chain into a new base generation.
    pub compacted: bool,
    /// Shared predicate windows grown in place by delta evaluation.
    pub windows_extended: usize,
    /// Shared windows dropped for full re-evaluation (fit shifted, or
    /// shape not row-locally extendable).
    pub windows_declined: usize,
    /// Shared sorted projections merged with the sorted delta.
    pub projections_merged: usize,
    /// Live sessions whose §6 slider band was repaired in place.
    pub bands_repaired: usize,
    /// Live sessions whose slider index had to be dropped.
    pub bands_dropped: usize,
}

/// Per-dataset delta-chain bookkeeping (see [`Service::dataset_info`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Rows across all tables at the chain tip.
    pub total_rows: usize,
    /// Base generation the chain grows from.
    pub base_gen: u64,
    /// Appends since the base generation.
    pub chain_len: usize,
    /// Rows added since the base generation.
    pub delta_rows: usize,
    /// Chain compactions over this dataset's lifetime.
    pub compactions: u64,
}

/// Execute a session's queued requests in FIFO order. Exactly one worker
/// runs this for a given slot at a time (`scheduled` guards entry); the
/// handshake at the empty-mailbox exit ensures a request that raced with
/// the exit is picked up — by this worker or by a rescheduled slot.
fn drain_mailbox(
    slot: &Arc<SessionSlot>,
    cache: &QueryCache,
    obs: &ServiceObs,
    admission: &Admission,
) {
    loop {
        let envelope = slot.mailbox.lock().expect("mailbox poisoned").pop_front();
        let Some(envelope) = envelope else {
            slot.scheduled.store(false, Ordering::SeqCst);
            let refilled = !slot.mailbox.lock().expect("mailbox poisoned").is_empty();
            // if a submitter slipped in after the pop but before the
            // store, either it saw scheduled=true (we must keep going) or
            // it re-sent the slot (another worker owns it; stop)
            if refilled && !slot.scheduled.swap(true, Ordering::SeqCst) {
                continue;
            }
            return;
        };
        let Envelope {
            request,
            reply,
            token,
            inflight_key,
        } = envelope;
        // a request interrupted while still queued — its deadline ran
        // out behind a slow neighbour, or a `cancel` op beat the drain —
        // is answered without touching the session at all
        let queued_interrupt = token.as_ref().and_then(CancelToken::interrupted);
        let response = if let Some(interrupt) = queued_interrupt {
            Response::from_error(&match interrupt {
                Interrupt::Cancelled => Error::Cancelled,
                Interrupt::DeadlineExceeded => Error::DeadlineExceeded,
            })
        } else {
            // a panic must not unwind through the worker loop: it would
            // kill the thread and strand the slot with `scheduled` stuck
            // at true, wedging the session and hanging every submitter
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut state = match slot.state.lock() {
                    Ok(g) => g,
                    // a previous request panicked mid-execution; the
                    // slot was recycled below, keep serving
                    Err(poisoned) => poisoned.into_inner(),
                };
                // phase histograms must count each pipeline run once: a
                // run happened iff this request computed a result the
                // session did not have (cached results and fast-path
                // drags re-report the *previous* run's trace)
                let fresh = state.session.cached_result().is_none();
                state.session.set_cancel_token(token.clone());
                let started = Instant::now();
                let response = execute(&mut state, &request, Some(cache));
                obs.record_op(request.op_name(), started.elapsed());
                state.session.set_cancel_token(None);
                if fresh {
                    if let Some(trace) = state.session.last_trace() {
                        obs.record_phases(&trace.phases);
                    }
                }
                response
            }))
            .unwrap_or_else(|_| {
                admission.panics.inc();
                // containment: the poisoned slot is recycled — partial
                // results, the per-session pipeline cache and the stale
                // token are dropped so the *next* request over this
                // session recomputes from clean state instead of
                // trusting whatever the panic left behind
                let mut state = match slot.state.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                state.session.recover();
                Response::error(
                    ErrorKind::Internal,
                    "internal error: request execution panicked",
                )
            })
        };
        admission.finish(inflight_key, &response);
        // a dropped PendingResponse just means nobody wants the answer
        let _ = reply.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RenderFormat;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn ramp_db(n: usize) -> Arc<Database> {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("ramp");
        db.add_table(b.build());
        Arc::new(db)
    }

    fn service(workers: usize) -> Service {
        let s = Service::new(ServiceConfig {
            workers,
            ..Default::default()
        });
        s.register_dataset("ramp", ramp_db(200), ConnectionRegistry::new());
        s
    }

    #[test]
    fn end_to_end_query_over_the_pool() {
        let s = service(2);
        let id = s.create_session("ramp").unwrap();
        assert_eq!(s.submit(id, Request::Ping).unwrap(), Response::Ok);
        assert_eq!(
            s.submit(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into())
            )
            .unwrap(),
            Response::Ok
        );
        match s.submit(id, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => {
                assert_eq!(sum.objects, 200);
                assert_eq!(sum.exact, 50);
            }
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn unknown_dataset_and_session_are_errors() {
        let s = service(1);
        assert!(s.create_session("nope").is_err());
        assert!(s.submit(SessionId(999), Request::Ping).is_err());
        let id = s.create_session("ramp").unwrap();
        assert!(s.close_session(id));
        assert!(s.submit(id, Request::Ping).is_err());
    }

    #[test]
    fn async_submissions_for_one_session_apply_in_order() {
        let s = service(4);
        let id = s.create_session("ramp").unwrap();
        let pending: Vec<PendingResponse> = vec![
            s.submit_async(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 100".into()),
            )
            .unwrap(),
            s.submit_async(
                id,
                Request::MoveSlider {
                    window: 0,
                    op: visdb_query::ast::CompareOp::Ge,
                    value: 180.0,
                },
            )
            .unwrap(),
            s.submit_async(id, Request::Summary { trace: false })
                .unwrap(),
        ];
        let mut responses = pending.into_iter().map(|p| p.wait().unwrap());
        assert_eq!(responses.next().unwrap(), Response::Ok);
        assert_eq!(responses.next().unwrap(), Response::Ok);
        match responses.next().unwrap() {
            // the summary observes the slider move (20 exact answers),
            // not the original query (100)
            Response::Summary(sum) => assert_eq!(sum.exact, 20),
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn a_request_burst_across_sessions_all_completes() {
        let s = service(4);
        let ids: Vec<SessionId> = (0..16).map(|_| s.create_session("ramp").unwrap()).collect();
        let pending: Vec<(usize, PendingResponse)> = ids
            .iter()
            .enumerate()
            .flat_map(|(i, &id)| {
                let threshold = 10 * i;
                [
                    (
                        i,
                        s.submit_async(
                            id,
                            Request::SetQueryText(format!(
                                "SELECT * FROM T WHERE x >= {threshold}"
                            )),
                        )
                        .unwrap(),
                    ),
                    (
                        i,
                        s.submit_async(id, Request::Summary { trace: false })
                            .unwrap(),
                    ),
                ]
            })
            .collect();
        for (i, p) in pending {
            match p.wait().unwrap() {
                Response::Ok => {}
                Response::Summary(sum) => assert_eq!(sum.exact, 200 - 10 * i),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn reregistering_a_dataset_invalidates_its_cached_frames() {
        let s = service(2);
        let a = s.create_session("ramp").unwrap();
        s.submit(
            a,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
        )
        .unwrap();
        let old_frame = s.submit(a, Request::Render(RenderFormat::Ppm)).unwrap();

        // same name, different data: 400 rows instead of 200
        s.register_dataset("ramp", ramp_db(400), ConnectionRegistry::new());
        let b = s.create_session("ramp").unwrap();
        s.submit(
            b,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
        )
        .unwrap();
        let new_frame = s.submit(b, Request::Render(RenderFormat::Ppm)).unwrap();

        assert_eq!(
            s.telemetry().query_cache.hits,
            0,
            "stale frame must not be served"
        );
        assert_ne!(old_frame, new_frame);
        match s.submit(b, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => assert_eq!(sum.objects, 400),
            other => panic!("expected summary, got {other:?}"),
        }

        // session A (still holding the old 200-row Arc) renders again,
        // re-populating the cache — its generation-scoped key must not
        // leak to a fresh session over the new data
        let old_again = s.submit(a, Request::Render(RenderFormat::Ppm)).unwrap();
        assert_eq!(old_again, old_frame);
        let c = s.create_session("ramp").unwrap();
        s.submit(
            c,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
        )
        .unwrap();
        let hits_before = s.telemetry().query_cache.hits;
        let newest = s.submit(c, Request::Render(RenderFormat::Ppm)).unwrap();
        assert_eq!(newest, new_frame);
        // c's render hit b's (same-generation) entry, never a's
        assert_eq!(s.telemetry().query_cache.hits, hits_before + 1);
    }

    #[test]
    fn shared_cache_serves_identical_renders_across_sessions() {
        let s = service(2);
        let a = s.create_session("ramp").unwrap();
        let b = s.create_session("ramp").unwrap();
        for id in [a, b] {
            s.submit(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
            )
            .unwrap();
        }
        let fa = s.submit(a, Request::Render(RenderFormat::Ppm)).unwrap();
        let before = s.telemetry().query_cache;
        let fb = s.submit(b, Request::Render(RenderFormat::Ppm)).unwrap();
        let after = s.telemetry().query_cache;
        assert_eq!(fa, fb, "cached frame must be identical");
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn append_rows_is_incremental_and_bit_identical() {
        use visdb_query::ast::CompareOp;
        let s = service(2);
        let id = s.create_session("ramp").unwrap();
        s.submit(
            id,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
        )
        .unwrap();
        // materialize (populates the shared window cache with recipes)
        // and drag (warms the shared projection + the session's band)
        match s.submit(id, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => assert_eq!(sum.exact, 50),
            other => panic!("expected summary, got {other:?}"),
        }
        s.submit(
            id,
            Request::DragSlider {
                window: 0,
                op: CompareOp::Ge,
                value: 150.0,
                trace: false,
            },
        )
        .unwrap();
        // appended rows are exact answers (distance 0): the §5.2 fit
        // cannot shift, so the cached window must *extend*, not recompute
        let rows: Vec<Row> = (200..220).map(|i| vec![Value::Float(i as f64)]).collect();
        let out = s.append_rows("ramp", None, rows).unwrap();
        assert_eq!(out.table, "T");
        assert_eq!(out.rows_appended, 20);
        assert_eq!(out.total_rows, 220);
        assert_eq!(out.chain_len, 1);
        assert!(!out.compacted);
        assert_eq!(out.windows_extended, 1, "window grown by delta eval");
        assert_eq!(out.projections_merged, 1, "projection merged, not rebuilt");
        assert_eq!(out.bands_repaired, 1, "live session's band repaired");
        // the live session observes the appended rows...
        match s.submit(id, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => {
                assert_eq!(sum.objects, 220);
                assert_eq!(sum.exact, 70);
            }
            other => panic!("expected summary, got {other:?}"),
        }
        // ...and renders bit-identically to a service loaded with the
        // full 220 rows from scratch
        let appended_frame = s.submit(id, Request::Render(RenderFormat::Ppm)).unwrap();
        let fresh = Service::new(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        fresh.register_dataset("ramp", ramp_db(220), ConnectionRegistry::new());
        let fid = fresh.create_session("ramp").unwrap();
        fresh
            .submit(
                fid,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 150".into()),
            )
            .unwrap();
        let fresh_frame = fresh
            .submit(fid, Request::Render(RenderFormat::Ppm))
            .unwrap();
        assert_eq!(appended_frame, fresh_frame);
        // delta telemetry is published
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("delta.appends"), Some(1));
        assert_eq!(snap.gauge("delta.chain_depth.ramp"), Some(1));
        assert_eq!(snap.gauge("delta.rows.ramp"), Some(20));
    }

    #[test]
    fn appends_compact_after_the_threshold() {
        let s = service(1);
        for i in 0..7u64 {
            let out = s
                .append_rows(
                    "ramp",
                    Some("T"),
                    vec![vec![Value::Float(200.0 + i as f64)]],
                )
                .unwrap();
            assert!(!out.compacted);
            assert_eq!(out.chain_len, i as usize + 1);
        }
        let out = s
            .append_rows("ramp", Some("T"), vec![vec![Value::Float(207.0)]])
            .unwrap();
        assert!(out.compacted, "the 8th link folds the chain");
        assert_eq!(out.chain_len, 0);
        let info = s.dataset_info();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].total_rows, 208);
        assert_eq!(info[0].delta_rows, 0);
        assert_eq!(info[0].compactions, 1);
        // queries after compaction see every appended row
        let id = s.create_session("ramp").unwrap();
        s.submit(
            id,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 200".into()),
        )
        .unwrap();
        match s.submit(id, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => {
                assert_eq!(sum.objects, 208);
                assert_eq!(sum.exact, 8);
            }
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn append_errors_leave_the_dataset_untouched() {
        let s = service(1);
        assert!(s.append_rows("nope", None, vec![]).is_err());
        // arity mismatch: the batch is atomic, nothing lands
        assert!(s
            .append_rows(
                "ramp",
                None,
                vec![vec![Value::Float(1.0), Value::Float(2.0)]]
            )
            .is_err());
        let info = s.dataset_info();
        assert_eq!(info[0].total_rows, 200);
        assert_eq!(info[0].chain_len, 0);
    }

    #[test]
    fn dropping_the_service_joins_workers_cleanly() {
        let s = service(4);
        let id = s.create_session("ramp").unwrap();
        let _ = s
            .submit_async(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 1".into()),
            )
            .unwrap();
        drop(s); // must not hang or panic
    }
}
