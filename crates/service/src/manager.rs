//! Session bookkeeping: IDs, lookup, mailboxes, and the LRU /
//! idle-eviction policy.
//!
//! The manager owns every live session as an [`Arc<SessionSlot>`]. A slot
//! bundles the session state with a FIFO *mailbox* and a `scheduled`
//! flag: the service's worker pool schedules a slot at most once at a
//! time and drains its mailbox in order, so requests *within* one session
//! apply in submission order while distinct sessions proceed in parallel
//! — the paper's single-user recalculation loop, multiplexed.
//!
//! Eviction only unlinks a slot from the table: a worker still draining
//! the mailbox holds its own `Arc`, finishes the in-flight requests
//! against the detached state, and later submissions get an
//! unknown-session error.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use visdb_core::Session;
use visdb_exec::CancelToken;
use visdb_obs::{Counter, Gauge, Registry};
use visdb_query::connection::ConnectionRegistry;
use visdb_relevance::Materialization;
use visdb_storage::Database;

use crate::api::{Request, Response, SessionState};

/// Opaque handle to a live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// One queued request and where to deliver its response.
pub struct Envelope {
    /// The request to execute.
    pub request: Request,
    /// Reply channel (a dropped receiver just discards the response).
    pub reply: Sender<Response>,
    /// Deadline/cancellation token minted at admission (`None` for
    /// plain submissions — the pipeline then skips its per-chunk polls).
    pub token: Option<CancelToken>,
    /// `(session id, request id)` under which the token is registered in
    /// the service's in-flight table, for cleanup after execution.
    pub inflight_key: Option<(u64, u64)>,
}

/// A live session plus its scheduling state.
pub struct SessionSlot {
    /// The session state; locked by the one worker draining the mailbox.
    pub state: Mutex<SessionState>,
    /// FIFO queue of not-yet-executed requests.
    pub mailbox: Mutex<VecDeque<Envelope>>,
    /// Whether the slot is currently queued for (or being drained by) a
    /// worker. Guards against double-scheduling.
    pub scheduled: AtomicBool,
}

impl SessionSlot {
    /// Whether a worker is draining (or queued to drain) this slot, or
    /// requests are still waiting in its mailbox. Busy slots are exempt
    /// from the idle sweep and deprioritized by capacity eviction: a
    /// session with a query mid-execution must drain before it can be
    /// reaped, or waiting submitters would observe their session vanish
    /// underneath an in-flight request.
    pub fn busy(&self) -> bool {
        if self.scheduled.load(Ordering::SeqCst) {
            return true;
        }
        match self.mailbox.lock() {
            Ok(m) => !m.is_empty(),
            Err(poisoned) => !poisoned.into_inner().is_empty(),
        }
    }
}

/// Per-session wiring handed to [`SessionManager::create`]: the shared
/// caches (scoped to one dataset generation) and the execution knobs.
/// Defaults to no shared caches, unpartitioned, `Materialization::Auto`.
#[derive(Default)]
pub struct SessionOptions {
    /// The service's shared predicate-window cache, if enabled.
    pub windows: Option<Arc<crate::cache::WindowCache>>,
    /// The service's shared sorted-projection cache, if enabled.
    pub projections: Option<Arc<crate::cache::ProjectionCache>>,
    /// Horizontal partitions per pipeline run (0/1 = unpartitioned).
    pub partitions: usize,
    /// Streaming vs materialized pipeline execution.
    pub materialization: Materialization,
    /// Collect a per-phase pipeline trace on every recalculation (see
    /// [`visdb_core::Session::set_collect_trace`]). The service enables
    /// this so `trace: true` requests and the per-phase latency
    /// histograms have data; the overhead is a handful of clock reads
    /// per full pipeline run.
    pub collect_trace: bool,
}

struct TableEntry {
    slot: Arc<SessionSlot>,
    last_used: Instant,
}

struct Table {
    entries: HashMap<u64, TableEntry>,
    next_id: u64,
}

/// Creates, resolves and evicts sessions.
pub struct SessionManager {
    table: Mutex<Table>,
    max_sessions: usize,
    idle_timeout: Duration,
    /// Live session count, kept in sync with the table so a registry
    /// snapshot never has to take the table lock.
    live: Arc<Gauge>,
    created: Arc<Counter>,
    /// Sessions dropped by LRU capacity pressure or the idle sweep
    /// (explicit [`SessionManager::remove`] closes are not evictions).
    evicted: Arc<Counter>,
}

impl SessionManager {
    /// Manager holding at most `max_sessions` (≥ 1) live sessions, with
    /// sessions idle longer than `idle_timeout` eligible for eviction.
    pub fn new(max_sessions: usize, idle_timeout: Duration) -> Self {
        SessionManager {
            table: Mutex::new(Table {
                entries: HashMap::new(),
                next_id: 1,
            }),
            max_sessions: max_sessions.max(1),
            idle_timeout,
            live: Arc::new(Gauge::new()),
            created: Arc::new(Counter::new()),
            evicted: Arc::new(Counter::new()),
        }
    }

    /// Publish the manager's live occupancy metrics into `registry`:
    /// `service.sessions.live` (gauge), `service.sessions.created` and
    /// `service.sessions.evicted` (counters).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_gauge("service.sessions.live", Arc::clone(&self.live));
        registry.register_counter("service.sessions.created", Arc::clone(&self.created));
        registry.register_counter("service.sessions.evicted", Arc::clone(&self.evicted));
    }

    fn lock(&self) -> MutexGuard<'_, Table> {
        // a poisoned table only means a panic mid-insert/remove; the map
        // itself is still structurally sound
        match self.table.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Create a session over a shared database. When the manager is at
    /// capacity the least-recently-used session is evicted first.
    /// `options` carries the shared caches (scoped to the dataset
    /// generation the session was created over) and the execution knobs
    /// — outputs are bit-identical under every combination.
    pub fn create(
        &self,
        dataset: impl Into<String>,
        db: Arc<Database>,
        registry: ConnectionRegistry,
        options: SessionOptions,
    ) -> SessionId {
        let dataset = dataset.into();
        let mut session = Session::new(db, registry);
        // service sessions compute lazily: a burst of slider moves costs
        // one recalculation at the next fetch, not one per move (§4.3's
        // "auto recalculate off" mode)
        session.set_auto_recalculate(false);
        session.set_partitions(options.partitions);
        session.set_materialization(options.materialization);
        session.set_collect_trace(options.collect_trace);
        if let Some(cache) = options.windows {
            session.set_shared_windows(dataset.clone(), cache);
        }
        if let Some(cache) = options.projections {
            session.set_shared_projections(dataset.clone(), cache);
        }
        let slot = Arc::new(SessionSlot {
            state: Mutex::new(SessionState { session, dataset }),
            mailbox: Mutex::new(VecDeque::new()),
            scheduled: AtomicBool::new(false),
        });
        let mut table = self.lock();
        if table.entries.len() >= self.max_sessions {
            // prefer an idle victim; only when *every* session is busy
            // does capacity pressure fall back to the global LRU (the
            // cap is hard — a detached slot still drains its mailbox
            // through the worker's own Arc, so nothing is lost mid-run,
            // but later submissions get an unknown-session error)
            let victim = table
                .entries
                .iter()
                .filter(|(_, entry)| !entry.slot.busy())
                .min_by_key(|(_, entry)| entry.last_used)
                .or_else(|| {
                    table
                        .entries
                        .iter()
                        .min_by_key(|(_, entry)| entry.last_used)
                })
                .map(|(&id, _)| id);
            if let Some(lru) = victim {
                table.entries.remove(&lru);
                self.evicted.inc();
            }
        }
        let id = table.next_id;
        table.next_id += 1;
        table.entries.insert(
            id,
            TableEntry {
                slot,
                last_used: Instant::now(),
            },
        );
        self.created.inc();
        self.live.set(table.entries.len() as i64);
        SessionId(id)
    }

    /// Resolve a session, marking it used now. `None` after eviction or
    /// explicit removal.
    pub fn get(&self, id: SessionId) -> Option<Arc<SessionSlot>> {
        let mut table = self.lock();
        let entry = table.entries.get_mut(&id.0)?;
        entry.last_used = Instant::now();
        Some(Arc::clone(&entry.slot))
    }

    /// A snapshot of every live slot, for service-level maintenance
    /// passes (the delta-append session rebase). Taken under the table
    /// lock without touching recency; callers lock each slot's state
    /// individually afterwards.
    pub fn slots(&self) -> Vec<Arc<SessionSlot>> {
        self.lock()
            .entries
            .values()
            .map(|entry| Arc::clone(&entry.slot))
            .collect()
    }

    /// Drop a session explicitly. Returns whether it was present.
    pub fn remove(&self, id: SessionId) -> bool {
        let mut table = self.lock();
        let removed = table.entries.remove(&id.0).is_some();
        self.live.set(table.entries.len() as i64);
        removed
    }

    /// Evict every session idle longer than the configured timeout.
    /// Returns how many were evicted.
    pub fn evict_idle(&self) -> usize {
        self.evict_idle_older_than(self.idle_timeout)
    }

    /// Evict sessions idle longer than `max_idle` (tests use short
    /// horizons without waiting out the configured timeout). A session
    /// with queued or executing work is never idle, however stale its
    /// `last_used` — it becomes evictable only after its mailbox drains.
    pub fn evict_idle_older_than(&self, max_idle: Duration) -> usize {
        let mut table = self.lock();
        let now = Instant::now();
        let before = table.entries.len();
        table.entries.retain(|_, entry| {
            entry.slot.busy() || now.duration_since(entry.last_used) <= max_idle
        });
        let evicted = before - table.entries.len();
        self.evicted.add(evicted as u64);
        self.live.set(table.entries.len() as i64);
        evicted
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Sessions created since construction.
    pub fn created_count(&self) -> usize {
        self.created.get() as usize
    }

    /// Sessions evicted (LRU or idle) since construction.
    pub fn evicted_count(&self) -> usize {
        self.evicted.get() as usize
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn db() -> Arc<Database> {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..4 {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut d = Database::new("d");
        d.add_table(b.build());
        Arc::new(d)
    }

    fn manager(cap: usize) -> SessionManager {
        SessionManager::new(cap, Duration::from_secs(3600))
    }

    #[test]
    fn create_get_remove() {
        let m = manager(8);
        let db = db();
        let a = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let b = m.create(
            "d",
            db,
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert!(m.get(a).is_some());
        assert!(m.remove(a));
        assert!(!m.remove(a));
        assert!(m.get(a).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sessions_share_the_database_without_copies() {
        let m = manager(8);
        let db = db();
        let a = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let b = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let sa = m.get(a).unwrap();
        let sb = m.get(b).unwrap();
        let da = sa.state.lock().unwrap().session.shared_db();
        let db_b = sb.state.lock().unwrap().session.shared_db();
        assert!(Arc::ptr_eq(&da, &db_b), "sessions must share one Arc");
        // 1 local + 2 sessions + 2 accessor clones
        assert_eq!(Arc::strong_count(&db), 5);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let m = manager(2);
        let db = db();
        let a = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let b = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        // touch `a` so `b` becomes the LRU
        assert!(m.get(a).is_some());
        let c = m.create(
            "d",
            db,
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        assert_eq!(m.len(), 2);
        assert!(m.get(a).is_some(), "recently-used session survives");
        assert!(m.get(b).is_none(), "LRU session was evicted");
        assert!(m.get(c).is_some());
    }

    #[test]
    fn idle_eviction_removes_only_stale_sessions() {
        let m = manager(8);
        let db = db();
        let a = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let b = m.create(
            "d",
            db,
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        std::thread::sleep(Duration::from_millis(30));
        assert!(m.get(b).is_some()); // refresh b's idle clock
        assert_eq!(m.evict_idle_older_than(Duration::from_millis(15)), 1);
        assert!(m.get(a).is_none());
        assert!(m.get(b).is_some());
        // nothing idle at a generous horizon
        assert_eq!(m.evict_idle_older_than(Duration::from_secs(60)), 0);
    }

    #[test]
    fn busy_sessions_survive_the_idle_sweep_until_drained() {
        let m = manager(8);
        let db = db();
        let a = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let b = m.create(
            "d",
            db,
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        // a worker is mid-drain on `a` (the service sets `scheduled`
        // before spawning the drain and it stays set until the mailbox
        // is empty)
        let slot = m.get(a).unwrap();
        slot.scheduled.store(true, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            m.evict_idle_older_than(Duration::from_millis(1)),
            1,
            "only the idle session is swept"
        );
        assert!(m.get(a).is_some(), "in-flight session must survive");
        assert!(m.get(b).is_none());
        // the drain finishes; the session is ordinary-idle again
        slot.scheduled.store(false, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(m.evict_idle_older_than(Duration::from_millis(1)), 1);
        assert!(m.get(a).is_none(), "drained session is evictable again");
    }

    #[test]
    fn capacity_eviction_prefers_idle_victims() {
        let m = manager(2);
        let db = db();
        let a = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let b = m.create(
            "d",
            Arc::clone(&db),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        // `a` is the LRU but busy; capacity pressure must take `b`
        let slot = m.get(a).unwrap();
        slot.scheduled.store(true, Ordering::SeqCst);
        assert!(m.get(b).is_some());
        let c = m.create(
            "d",
            db,
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        assert_eq!(m.len(), 2);
        assert!(m.get(a).is_some(), "busy LRU session survives");
        assert!(m.get(b).is_none(), "idle session was the victim");
        assert!(m.get(c).is_some());
    }

    #[test]
    fn eviction_does_not_kill_in_flight_handles() {
        let m = manager(8);
        let a = m.create(
            "d",
            db(),
            ConnectionRegistry::new(),
            SessionOptions::default(),
        );
        let handle = m.get(a).unwrap();
        assert!(m.remove(a));
        // the detached state is still usable through the Arc
        assert_eq!(handle.state.lock().unwrap().dataset, "d");
    }
}
