//! # visdb-service
//!
//! A concurrent, multi-session query service over shared VisDB databases
//! — the serving layer the 1994 paper never needed but a
//! millions-of-users deployment does.
//!
//! The paper's system is single-user: one session owns the database and
//! recalculates the visualization after every slider drag (§4.3, §6).
//! This crate multiplexes that interaction loop:
//!
//! * **Shared data** — datasets are registered once as `Arc<Database>`;
//!   every session references the same immutable storage with zero
//!   copies ([`Session::new`](visdb_core::Session::new) takes the `Arc`).
//! * **Sessions** — a [`SessionManager`] issues [`SessionId`]s and evicts
//!   by LRU when at capacity or when idle past a timeout.
//! * **Requests** — the [`Request`]/[`Response`] enums cover the §4.3
//!   interactions: install a query, drag a slider, change a weight,
//!   switch the display policy, fetch the rendered frame as ASCII or PPM
//!   bytes.
//! * **Parallelism** — a budgeted [`visdb_exec::Runtime`] shared from
//!   request dispatch down to the pipeline's chunked row walks: session
//!   drains are runtime jobs, chunk fan-out steals from the same pool,
//!   and the live thread count never exceeds the configured budget no
//!   matter how many large queries run concurrently ([`service`] module
//!   docs describe the mailbox scheduling).
//! * **Partitioned execution** — `ServiceConfig::partitions` runs every
//!   pipeline over horizontal partitions of the base relation with
//!   per-partition top-k selections merged by relevance rank;
//!   bit-identical outputs, sharding-shaped scheduling.
//! * **Cross-user caching** — a shared [`QueryCache`] keyed by (dataset,
//!   normalized query text, display parameters) serves identical renders
//!   from different users without re-running the pipeline, and a shared
//!   [`WindowCache`] of per-predicate window evaluations makes a slider
//!   drag that changes one predicate reuse every *other* window across
//!   sessions (the §6 incremental idea, cross-session).
//! * **Deadlines, cancellation & shedding** — every request can carry a
//!   deadline and a cancel handle ([`SubmitOptions`], wire fields
//!   `deadline_ms` / `id`); an interrupted query stops at the
//!   pipeline's next 16k-row chunk poll and answers a structured
//!   `Response::Error { kind: Cancelled | DeadlineExceeded, .. }`
//!   without corrupting any cache. Past the configurable pending-work
//!   watermark, new submissions are shed with a `retry_after_ms` hint
//!   while in-flight queries run to completion, and a panicking request
//!   is contained: the worker survives and the session slot is recycled
//!   ([`service`] module docs).
//!
//! The `visdb-server` binary speaks this API as newline-delimited JSON
//! over stdin/stdout; programmatic callers use [`Service`] directly:
//!
//! ```
//! use std::sync::Arc;
//! use visdb_service::{Request, Response, Service, ServiceConfig};
//! use visdb_query::connection::ConnectionRegistry;
//! use visdb_storage::{Database, TableBuilder};
//! use visdb_types::{Column, DataType, Value};
//!
//! let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
//! for i in 0..100 {
//!     t = t.row(vec![Value::Float(i as f64)]).unwrap();
//! }
//! let mut db = Database::new("demo");
//! db.add_table(t.build());
//!
//! let service = Service::new(ServiceConfig::default());
//! service.register_dataset("demo", Arc::new(db), ConnectionRegistry::new());
//!
//! let user = service.create_session("demo").unwrap();
//! service
//!     .submit(user, Request::SetQueryText("SELECT * FROM T WHERE x >= 90".into()))
//!     .unwrap();
//! match service.submit(user, Request::Summary { trace: false }).unwrap() {
//!     Response::Summary(s) => assert_eq!(s.exact, 10),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```
//!
//! ## Observability
//!
//! Every layer publishes live metric handles into one
//! [`visdb_obs::Registry`] owned by the [`Service`]: exec-pool counters
//! and job latency, all three cache hit/miss pairs, session occupancy,
//! per-op request counts and latency histograms, and per-phase pipeline
//! latency. `Request::Metrics` (wire op `metrics`) returns the full
//! snapshot as JSON plus a Prometheus-style text exposition, and
//! `trace: true` on summary / drag requests returns the per-query
//! [`TraceReport`] inline.

pub mod api;
pub mod cache;
pub mod json;
pub mod manager;
pub mod server;
pub mod service;

pub use api::{
    execute, ErrorKind, RenderFormat, Request, Response, SessionState, SessionSummary, TraceReport,
};
pub use cache::{CacheStats, ProjectionCache, QueryCache, WindowCache};
pub use manager::{SessionId, SessionManager, SessionOptions};
pub use service::{
    AppendOutcome, DatasetInfo, PendingResponse, Service, ServiceConfig, ServiceTelemetry,
    SubmitOptions,
};
pub use visdb_obs::{Registry, Snapshot};
