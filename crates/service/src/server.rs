//! The newline-delimited JSON protocol spoken by the `visdb-server`
//! binary.
//!
//! One request object per line on stdin, one response object per line on
//! stdout. Service-level operations carry an `op` and no `session`:
//!
//! ```text
//! {"id":1,"op":"datasets"}
//! {"id":2,"op":"create_session","dataset":"env"}
//! {"id":3,"op":"close_session","session":1}
//! {"id":4,"op":"stats"}
//! {"id":5,"op":"load_csv","dataset":"ext","table":"T","csv":"x,y\n1,2.5\n"}
//! ```
//!
//! `load_csv` registers an external dataset from CSV text whose first
//! line names the columns; column types are inferred
//! ([`visdb_storage::csv::read_csv_infer`]). `table` defaults to the
//! dataset name. Re-loading an existing dataset name replaces it for
//! new sessions (generation-scoped caches prevent stale reuse).
//!
//! Everything else is a per-session request (see
//! [`Request::from_json`](crate::api::Request::from_json)) addressed with
//! a `session` field:
//!
//! ```text
//! {"id":5,"session":1,"op":"set_query","text":"SELECT * FROM T WHERE x >= 5"}
//! {"id":6,"session":1,"op":"move_slider","window":0,"cmp":">=","value":3}
//! {"id":7,"session":1,"op":"drag_slider","window":0,"cmp":">=","value":4}
//! {"id":8,"session":1,"op":"render","format":"ascii"}
//! ```
//!
//! `drag_slider` applies the same modification as `move_slider` but
//! replies with the interactive drag counters immediately
//! (`{"drag":{"displayed":..,"exact":..,"incremental":..}}`), served by
//! the shared sorted-projection fast path when the query shape allows.
//!
//! Per-session requests may also carry a `deadline_ms` budget; one that
//! expires — queued or mid-pipeline — answers with
//! `{"ok":false,"kind":"deadline_exceeded",...}`. The request `id`
//! doubles as a cancel handle:
//!
//! ```text
//! {"id":9,"session":1,"op":"render","format":"ppm","deadline_ms":250}
//! {"op":"cancel","session":1,"request":9}
//! ```
//!
//! Responses echo `id` (when given) and carry `"ok"`; errors are data,
//! never a dropped connection:
//! `{"id":7,"ok":false,"error":"...","kind":"invalid_request"}` (the
//! `kind` taxonomy is [`ErrorKind`](crate::api::ErrorKind); overloaded
//! responses add `retry_after_ms`). The dispatch logic lives here
//! (testable without a process); the binary is a thin stdin/stdout loop
//! around [`handle_line`].

use std::sync::Arc;
use std::time::Duration;

use crate::api::{ErrorKind, Request};
use crate::json::{parse, Json};
use crate::manager::SessionId;
use crate::service::{Service, SubmitOptions};
use visdb_query::connection::ConnectionRegistry;
use visdb_storage::{csv::read_csv_infer, Database};
use visdb_types::{DataType, Result, Value};

/// Process one protocol line against a service; always yields a response
/// object (parse and execution errors become `"ok": false` replies, and
/// a panic anywhere in dispatch is contained into an `"internal"` error
/// — nothing a client sends may kill the stdio loop).
pub fn handle_line(service: &Service, line: &str) -> Json {
    let (id, result) = match parse(line) {
        Ok(msg) => {
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(service, &msg)))
                    .unwrap_or_else(|_| {
                        Err(visdb_types::Error::Internal(
                            "request dispatch panicked".into(),
                        ))
                    });
            (msg.get("id").cloned(), result)
        }
        Err(e) => (None, Err(e)),
    };
    let mut response = match result {
        Ok(r) => r,
        Err(e) => Json::obj([
            ("ok", Json::Bool(false)),
            ("error", e.to_string().into()),
            ("kind", ErrorKind::of(&e).wire_name().into()),
        ]),
    };
    if let (Some(id), Json::Obj(map)) = (id, &mut response) {
        map.insert("id".into(), id);
    }
    response
}

fn dispatch(service: &Service, msg: &Json) -> Result<Json> {
    let op = msg.get("op").and_then(Json::as_str).unwrap_or_default();
    match op {
        "datasets" => Ok(Json::obj([
            ("ok", Json::Bool(true)),
            (
                "datasets",
                Json::Arr(
                    service
                        .dataset_names()
                        .into_iter()
                        .map(Json::from)
                        .collect(),
                ),
            ),
        ])),
        "create_session" => {
            let dataset = msg.get("dataset").and_then(Json::as_str).ok_or_else(|| {
                visdb_types::Error::invalid_parameter("dataset", "missing string field")
            })?;
            let id = service.create_session(dataset)?;
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("session", id.0.into()),
            ]))
        }
        "close_session" => {
            let id = session_id(msg)?;
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("closed", service.close_session(id).into()),
            ]))
        }
        "load_csv" => {
            let require = |field: &str| {
                msg.get(field).and_then(Json::as_str).ok_or_else(|| {
                    visdb_types::Error::invalid_parameter(field.to_string(), "missing string field")
                })
            };
            let dataset = require("dataset")?;
            let table_name = msg
                .get("table")
                .and_then(Json::as_str)
                .unwrap_or(dataset)
                .to_string();
            let csv = require("csv")?;
            let table = read_csv_infer(&table_name, csv.as_bytes())?;
            let rows = table.len();
            let columns = table.schema().len();
            let mut db = Database::new(dataset);
            db.add_table(table);
            service.register_dataset(dataset, Arc::new(db), ConnectionRegistry::new());
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("dataset", dataset.into()),
                ("table", table_name.as_str().into()),
                ("rows", rows.into()),
                ("columns", columns.into()),
            ]))
        }
        "append_rows" => {
            let dataset = msg.get("dataset").and_then(Json::as_str).ok_or_else(|| {
                visdb_types::Error::invalid_parameter("dataset", "missing string field")
            })?;
            let table = msg.get("table").and_then(Json::as_str);
            let rows = parse_rows(service, dataset, table, msg.get("rows"))?;
            let outcome = service.append_rows(dataset, table, rows)?;
            Ok(append_response(&outcome))
        }
        "append_csv" => {
            let require = |field: &str| {
                msg.get(field).and_then(Json::as_str).ok_or_else(|| {
                    visdb_types::Error::invalid_parameter(field.to_string(), "missing string field")
                })
            };
            let dataset = require("dataset")?;
            let table = msg.get("table").and_then(Json::as_str);
            let csv = require("csv")?;
            let outcome = service.append_csv(dataset, table, csv)?;
            Ok(append_response(&outcome))
        }
        "stats" => {
            let t = service.telemetry();
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("sessions", service.session_count().into()),
                ("workers", service.workers().into()),
                (
                    "cache",
                    Json::obj([
                        ("hits", t.query_cache.hits.into()),
                        ("misses", t.query_cache.misses.into()),
                    ]),
                ),
                (
                    "window_cache",
                    Json::obj([
                        ("hits", t.window_cache.hits.into()),
                        ("misses", t.window_cache.misses.into()),
                    ]),
                ),
                (
                    "datasets",
                    Json::Arr(
                        service
                            .dataset_info()
                            .into_iter()
                            .map(|d| {
                                Json::obj([
                                    ("name", d.name.as_str().into()),
                                    ("rows", d.total_rows.into()),
                                    ("base_gen", d.base_gen.into()),
                                    ("chain_len", d.chain_len.into()),
                                    ("delta_rows", d.delta_rows.into()),
                                    ("compactions", d.compactions.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        // the full registry snapshot (JSON + Prometheus-style text
        // exposition); service-level like `stats`, no session needed
        "metrics" => {
            Ok(crate::api::Response::Metrics(Box::new(service.metrics_snapshot())).to_json())
        }
        // abandon a queued or executing request: `request` is the `id`
        // the target was submitted with. Service-level — it must never
        // queue behind the very request it is trying to stop.
        "cancel" => {
            let id = session_id(msg)?;
            let request_id = msg.get("request").and_then(Json::as_u64).ok_or_else(|| {
                visdb_types::Error::invalid_parameter("request", "missing integer field")
            })?;
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("cancelled", service.cancel(id, request_id).into()),
            ]))
        }
        _ => {
            // a per-session request: route through the worker pool
            let id = session_id(msg)?;
            let request = Request::from_json(msg)?;
            let opts = submit_options(msg)?;
            let response = service.submit_opts(id, request, opts)?;
            Ok(response.to_json())
        }
    }
}

/// Per-request dispatch options from the wire: an optional `deadline_ms`
/// budget, plus the request `id` doubling as the handle a later `cancel`
/// op can aim at. A present-but-malformed `deadline_ms` is a structured
/// error, not a silently unbounded request.
fn submit_options(msg: &Json) -> Result<SubmitOptions> {
    let deadline = match msg.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
            visdb_types::Error::invalid_parameter(
                "deadline_ms",
                "must be a non-negative integer (milliseconds)",
            )
        })?)),
    };
    Ok(SubmitOptions {
        deadline,
        request_id: msg.get("id").and_then(Json::as_u64),
    })
}

fn session_id(msg: &Json) -> Result<SessionId> {
    msg.get("session")
        .and_then(Json::as_u64)
        .map(SessionId)
        .ok_or_else(|| visdb_types::Error::invalid_parameter("session", "missing integer field"))
}

/// Parse the `rows` field of an `append_rows` op — an array of arrays,
/// one JSON value per schema column — into typed rows against the target
/// table's existing schema.
fn parse_rows(
    service: &Service,
    dataset: &str,
    table: Option<&str>,
    rows: Option<&Json>,
) -> Result<Vec<visdb_storage::Row>> {
    let Some(Json::Arr(rows)) = rows else {
        return Err(visdb_types::Error::invalid_parameter(
            "rows",
            "missing array-of-arrays field",
        ));
    };
    let (_, schema) = service.table_schema(dataset, table)?;
    let types: Vec<DataType> = schema.columns().iter().map(|c| c.data_type).collect();
    rows.iter()
        .map(|row| {
            let Json::Arr(cells) = row else {
                return Err(visdb_types::Error::invalid_parameter(
                    "rows",
                    "each row must be an array",
                ));
            };
            if cells.len() != types.len() {
                return Err(visdb_types::Error::invalid_parameter(
                    "rows",
                    format!("expected {} cells, found {}", types.len(), cells.len()),
                ));
            }
            cells
                .iter()
                .zip(&types)
                .map(|(cell, dt)| json_cell(cell, *dt))
                .collect()
        })
        .collect()
}

/// One JSON cell as a typed [`Value`]: `null` is NULL, numbers land in
/// integer columns only when integral, and strings are parsed like CSV
/// cells (so `"48.1;11.6"` is a Location).
fn json_cell(v: &Json, dt: DataType) -> Result<Value> {
    Ok(match (v, dt) {
        (Json::Null, _) => Value::Null,
        (Json::Bool(b), DataType::Bool) => Value::Bool(*b),
        (Json::Num(n), DataType::Float | DataType::Unknown) => Value::Float(*n),
        (Json::Num(n), DataType::Int) if n.fract() == 0.0 => Value::Int(*n as i64),
        (Json::Num(n), DataType::Timestamp) if n.fract() == 0.0 => Value::Timestamp(*n as i64),
        (Json::Str(s), _) => visdb_storage::csv::parse_cell(s, dt)?,
        (other, dt) => {
            return Err(visdb_types::Error::invalid_parameter(
                "rows",
                format!("cannot use {other} as {dt}"),
            ))
        }
    })
}

/// The shared response shape of the two append ops.
fn append_response(o: &crate::service::AppendOutcome) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("dataset", o.dataset.as_str().into()),
        ("table", o.table.as_str().into()),
        ("rows_appended", o.rows_appended.into()),
        ("total_rows", o.total_rows.into()),
        ("base_gen", o.base_gen.into()),
        ("chain_len", o.chain_len.into()),
        ("compacted", Json::Bool(o.compacted)),
        ("windows_extended", o.windows_extended.into()),
        ("windows_declined", o.windows_declined.into()),
        ("projections_merged", o.projections_merged.into()),
        ("bands_repaired", o.bands_repaired.into()),
        ("bands_dropped", o.bands_dropped.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::sync::Arc;
    use visdb_query::connection::ConnectionRegistry;
    use visdb_storage::{Database, TableBuilder};
    use visdb_types::{Column, DataType, Value};

    fn service() -> Service {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..50 {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("demo");
        db.add_table(b.build());
        let s = Service::new(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        s.register_dataset("demo", Arc::new(db), ConnectionRegistry::new());
        s
    }

    #[test]
    fn full_protocol_conversation() {
        let s = service();
        let r = handle_line(&s, r#"{"id":1,"op":"datasets"}"#);
        assert_eq!(r.to_string(), r#"{"datasets":["demo"],"id":1,"ok":true}"#);
        let r = handle_line(&s, r#"{"id":2,"op":"create_session","dataset":"demo"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let session = r.get("session").unwrap().as_u64().unwrap();

        let line = format!(
            r#"{{"id":3,"session":{session},"op":"set_query","text":"SELECT * FROM T WHERE x >= 40"}}"#
        );
        assert_eq!(handle_line(&s, &line).get("ok"), Some(&Json::Bool(true)));

        let line = format!(r#"{{"id":4,"session":{session},"op":"summary"}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(
            r.get("summary").unwrap().get("exact").unwrap().as_u64(),
            Some(10)
        );

        let line = format!(r#"{{"id":5,"session":{session},"op":"render","format":"ascii"}}"#);
        let r = handle_line(&s, &line);
        let frame = r.get("frame").unwrap();
        assert_eq!(frame.get("format").unwrap().as_str(), Some("ascii"));
        assert!(!frame.get("data").unwrap().as_str().unwrap().is_empty());

        let line = format!(r#"{{"id":6,"op":"close_session","session":{session}}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(r.get("closed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn load_csv_registers_a_queryable_dataset() {
        let s = service();
        // header + inferred schema: t:Int, temp:Float, tag:Str
        let line = r#"{"id":1,"op":"load_csv","dataset":"ext","table":"W","csv":"t,temp,tag\n0,15.5,munich\n3600,9.0,berlin\n7200,,hamburg\n"}"#;
        let r = handle_line(&s, line);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
        assert_eq!(r.get("rows").unwrap().as_u64(), Some(3));
        assert_eq!(r.get("columns").unwrap().as_u64(), Some(3));

        let r = handle_line(&s, r#"{"op":"datasets"}"#);
        let names = r.get("datasets").unwrap().to_string();
        assert!(names.contains("ext"), "{names}");

        let r = handle_line(&s, r#"{"op":"create_session","dataset":"ext"}"#);
        let session = r.get("session").unwrap().as_u64().unwrap();
        let line = format!(
            r#"{{"session":{session},"op":"set_query","text":"SELECT * FROM W WHERE temp >= 10"}}"#
        );
        assert_eq!(handle_line(&s, &line).get("ok"), Some(&Json::Bool(true)));
        let line = format!(r#"{{"session":{session},"op":"summary"}}"#);
        let r = handle_line(&s, &line);
        let summary = r.get("summary").unwrap();
        assert_eq!(summary.get("objects").unwrap().as_u64(), Some(3));
        assert_eq!(summary.get("exact").unwrap().as_u64(), Some(1));

        // malformed CSV is an error response, not a crash
        let r = handle_line(&s, r#"{"op":"load_csv","dataset":"bad","csv":""}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let r = handle_line(&s, r#"{"op":"load_csv","csv":"a\n1\n"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn append_ops_round_trip_and_stats_expose_the_chain() {
        let s = service();
        let r = handle_line(&s, r#"{"op":"create_session","dataset":"demo"}"#);
        let session = r.get("session").unwrap().as_u64().unwrap();
        let line = format!(
            r#"{{"session":{session},"op":"set_query","text":"SELECT * FROM T WHERE x >= 40"}}"#
        );
        handle_line(&s, &line);
        let line = format!(r#"{{"session":{session},"op":"summary"}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(
            r.get("summary").unwrap().get("exact").unwrap().as_u64(),
            Some(10)
        );

        // headerless CSV delta against the registered schema
        let r = handle_line(
            &s,
            r#"{"id":7,"op":"append_csv","dataset":"demo","csv":"50\n51\n52\n"}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
        assert_eq!(r.get("rows_appended").unwrap().as_u64(), Some(3));
        assert_eq!(r.get("total_rows").unwrap().as_u64(), Some(53));
        assert_eq!(r.get("chain_len").unwrap().as_u64(), Some(1));
        assert_eq!(r.get("compacted"), Some(&Json::Bool(false)));

        // JSON rows typed against the schema (x: Float)
        let r = handle_line(
            &s,
            r#"{"op":"append_rows","dataset":"demo","table":"T","rows":[[53],[54.5]]}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
        assert_eq!(r.get("rows_appended").unwrap().as_u64(), Some(2));
        assert_eq!(r.get("chain_len").unwrap().as_u64(), Some(2));

        // the live session sees all 55 rows without re-registering
        let line = format!(r#"{{"session":{session},"op":"summary"}}"#);
        let r = handle_line(&s, &line);
        let summary = r.get("summary").unwrap();
        assert_eq!(summary.get("objects").unwrap().as_u64(), Some(55));
        assert_eq!(summary.get("exact").unwrap().as_u64(), Some(15));

        // stats report the delta chain per dataset
        let r = handle_line(&s, r#"{"op":"stats"}"#);
        let ds = match r.get("datasets").unwrap() {
            Json::Arr(a) => &a[0],
            other => panic!("expected array, got {other}"),
        };
        assert_eq!(ds.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(ds.get("rows").unwrap().as_u64(), Some(55));
        assert_eq!(ds.get("chain_len").unwrap().as_u64(), Some(2));
        assert_eq!(ds.get("delta_rows").unwrap().as_u64(), Some(5));

        // malformed appends are error responses, not crashes
        for line in [
            r#"{"op":"append_rows","dataset":"demo","rows":[[1,2]]}"#,
            r#"{"op":"append_rows","dataset":"demo","rows":"nope"}"#,
            r#"{"op":"append_rows","dataset":"nope","rows":[[1]]}"#,
            r#"{"op":"append_csv","dataset":"demo","csv":"not,a,row\n"}"#,
            r#"{"op":"append_csv","dataset":"demo"}"#,
        ] {
            let r = handle_line(&s, line);
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "line: {line}");
        }
        // failed appends left the chain untouched
        let r = handle_line(&s, r#"{"op":"stats"}"#);
        let ds = match r.get("datasets").unwrap() {
            Json::Arr(a) => &a[0],
            other => panic!("expected array, got {other}"),
        };
        assert_eq!(ds.get("rows").unwrap().as_u64(), Some(55));
        assert_eq!(ds.get("chain_len").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn stats_reflect_activity() {
        let s = service();
        let r = handle_line(&s, r#"{"op":"stats"}"#);
        assert_eq!(r.get("sessions").unwrap().as_u64(), Some(0));
        assert_eq!(r.get("workers").unwrap().as_u64(), Some(2));
        handle_line(&s, r#"{"op":"create_session","dataset":"demo"}"#);
        let r = handle_line(&s, r#"{"op":"stats"}"#);
        assert_eq!(r.get("sessions").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn deadline_and_cancel_wire_ops() {
        let s = service();
        let r = handle_line(&s, r#"{"op":"create_session","dataset":"demo"}"#);
        let session = r.get("session").unwrap().as_u64().unwrap();
        // a malformed deadline is a structured error, not an unbounded
        // request (and not a dead loop)
        let line = format!(r#"{{"id":1,"session":{session},"op":"summary","deadline_ms":"soon"}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");
        assert_eq!(r.get("kind").unwrap().as_str(), Some("invalid_request"));
        // a generous deadline executes normally
        let line = format!(
            r#"{{"id":2,"session":{session},"op":"set_query","text":"SELECT * FROM T WHERE x >= 40","deadline_ms":60000}}"#
        );
        assert_eq!(handle_line(&s, &line).get("ok"), Some(&Json::Bool(true)));
        // an already-expired deadline is answered without executing
        let line = format!(r#"{{"id":3,"session":{session},"op":"summary","deadline_ms":0}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");
        assert_eq!(r.get("kind").unwrap().as_str(), Some("deadline_exceeded"));
        // ...and leaves the session fully usable
        let line = format!(r#"{{"id":4,"session":{session},"op":"summary"}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(
            r.get("summary").unwrap().get("exact").unwrap().as_u64(),
            Some(10)
        );
        // cancel with no matching in-flight request reports false
        let line = format!(r#"{{"op":"cancel","session":{session},"request":777}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("cancelled"), Some(&Json::Bool(false)));
        // a cancel op missing its target is structured too
        let line = format!(r#"{{"op":"cancel","session":{session}}}"#);
        let r = handle_line(&s, &line);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(r.get("kind").unwrap().as_str(), Some("invalid_request"));
    }

    #[test]
    fn errors_are_responses_not_crashes() {
        let s = service();
        for (line, needle) in [
            ("not json at all", "parse"),
            (r#"{"op":"create_session"}"#, "dataset"),
            (
                r#"{"op":"create_session","dataset":"nope"}"#,
                "unknown dataset",
            ),
            (r#"{"op":"summary"}"#, "session"),
            (r#"{"op":"summary","session":99}"#, "unknown or evicted"),
            (r#"{"op":"frobnicate","session":1}"#, "session"),
        ] {
            let r = handle_line(&s, line);
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "line: {line}");
            let err = r.get("error").unwrap().as_str().unwrap();
            assert!(
                err.contains(needle),
                "error {err:?} should mention {needle:?}"
            );
        }
        // the id is echoed even on failures
        let r = handle_line(&s, r#"{"id":42,"op":"summary"}"#);
        assert_eq!(r.get("id").unwrap().as_u64(), Some(42));
    }
}
