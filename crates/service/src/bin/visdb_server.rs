//! `visdb-server` — the VisDB query service over stdin/stdout.
//!
//! Speaks newline-delimited JSON (see `visdb_service::server` for the
//! protocol). Datasets are synthetic for now: the environmental workload
//! of §3/§4 (`env`) and a plain numeric ramp (`ramp`); a TCP/HTTP
//! transport and externally-loaded datasets are roadmap items.
//!
//! ```sh
//! printf '%s\n%s\n%s\n' \
//!   '{"id":1,"op":"create_session","dataset":"ramp"}' \
//!   '{"id":2,"session":1,"op":"set_query","text":"SELECT * FROM T WHERE x >= 900"}' \
//!   '{"id":3,"session":1,"op":"summary"}' \
//!   | cargo run --release -p visdb-service --bin visdb-server
//! ```
//!
//! Options: `--workers N` (global thread budget, default 4), `--cache N`
//! (default 256), `--hours N` (size of the env dataset, default 240),
//! `--partitions N` (horizontal partitions per pipeline run, default 0 =
//! unpartitioned; outputs are bit-identical either way), and
//! `--exec auto|materialized|streaming` (pipeline materialization mode,
//! default auto; streaming trades the shared window cache for
//! zero-materialization execution — outputs are bit-identical),
//! `--watermark N` (admission watermark: pending requests beyond this
//! are shed with a retry-after hint, default 4096), and
//! `--deadline-ms N` (default per-request deadline, default 0 = none;
//! requests may still override with their own `deadline_ms`).

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

use visdb_data::{generate_environmental, EnvConfig};
use visdb_query::connection::ConnectionRegistry;
use visdb_relevance::Materialization;
use visdb_service::server::handle_line;
use visdb_service::{Service, ServiceConfig};
use visdb_storage::{Database, TableBuilder};
use visdb_types::{Column, DataType, Value};

/// How often the request loop checks for idle sessions to evict.
const SWEEP_EVERY: std::time::Duration = std::time::Duration::from_secs(30);

fn ramp_db(n: usize) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for i in 0..n {
        t = t.row(vec![Value::Float(i as f64)]).expect("conforming row");
    }
    let mut db = Database::new("ramp");
    db.add_table(t.build());
    db
}

fn parse_flag(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} needs an integer argument")),
        None => Ok(default),
    }
}

fn parse_exec_flag(args: &[String]) -> Result<Materialization, String> {
    match args.iter().position(|a| a == "--exec") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("auto") => Ok(Materialization::Auto),
            Some("materialized") => Ok(Materialization::Materialized),
            Some("streaming") => Ok(Materialization::Streaming),
            _ => Err("--exec needs auto|materialized|streaming".to_string()),
        },
        None => Ok(Materialization::Auto),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workers, cache, hours, partitions, exec, watermark, deadline_ms) = match (
        parse_flag(&args, "--workers", 4),
        parse_flag(&args, "--cache", 256),
        parse_flag(&args, "--hours", 240),
        parse_flag(&args, "--partitions", 0),
        parse_exec_flag(&args),
        parse_flag(&args, "--watermark", 4096),
        parse_flag(&args, "--deadline-ms", 0),
    ) {
        (Ok(w), Ok(c), Ok(h), Ok(p), Ok(e), Ok(wm), Ok(d)) => (w, c, h, p, e, wm, d),
        (w, c, h, p, e, wm, d) => {
            for e in [
                w.err(),
                c.err(),
                h.err(),
                p.err(),
                e.err(),
                wm.err(),
                d.err(),
            ]
            .into_iter()
            .flatten()
            {
                eprintln!("visdb-server: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let service = Service::new(ServiceConfig {
        workers,
        cache_capacity: cache,
        partitions,
        materialization: exec,
        pending_watermark: watermark,
        default_deadline: (deadline_ms > 0)
            .then(|| std::time::Duration::from_millis(deadline_ms as u64)),
        ..Default::default()
    });

    let env = generate_environmental(&EnvConfig {
        hours,
        stations: 1,
        ..Default::default()
    });
    service.register_dataset("env", Arc::new(env.db), env.registry);
    service.register_dataset("ramp", Arc::new(ramp_db(10_000)), ConnectionRegistry::new());

    eprintln!(
        "visdb-server ready: datasets {:?}, {workers} workers (one JSON request per line)",
        service.dataset_names()
    );

    let stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    let mut last_sweep = std::time::Instant::now();
    for line in stdin.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        // abandoned sessions (created, never closed) are reaped so the
        // configured idle timeout is honored, not just the LRU cap
        if last_sweep.elapsed() >= SWEEP_EVERY {
            let evicted = service.evict_idle_sessions();
            if evicted > 0 {
                eprintln!("visdb-server: evicted {evicted} idle session(s)");
            }
            last_sweep = std::time::Instant::now();
        }
        let response = handle_line(&service, &line);
        if writeln!(stdout, "{response}")
            .and_then(|()| stdout.flush())
            .is_err()
        {
            break; // client went away
        }
    }
    ExitCode::SUCCESS
}
