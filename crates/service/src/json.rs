//! A minimal JSON value model, parser and writer.
//!
//! Hand-rolled (like the PPM writers in `visdb-render`) because the build
//! environment has no registry access for `serde`; the newline-delimited
//! protocol of `visdb-server` only needs flat objects with strings,
//! numbers and booleans, but the implementation is a complete JSON
//! subset: nested arrays/objects, escape sequences, and `\uXXXX` code
//! points (surrogate pairs included).

use std::collections::BTreeMap;
use std::fmt;

use visdb_types::{Error, Result};

/// A JSON value. Objects keep sorted key order (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity; match JavaScript's
                    // JSON.stringify and emit null rather than break the
                    // output line
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(src: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{}' at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::parse(format!(
                "unexpected JSON input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::parse("expected ',' or ']' in JSON array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(Error::parse("expected ',' or '}' in JSON object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                None => return Err(Error::parse("unterminated JSON string")),
                _ => unreachable!("loop stops only at quote or backslash"),
            }
        }
    }

    fn escape(&mut self) -> Result<char> {
        let c = self
            .peek()
            .ok_or_else(|| Error::parse("unterminated JSON escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                // decode surrogate pairs; lone surrogates are an error
                if (0xD800..0xDC00).contains(&hi) {
                    if !self.eat_literal("\\u") {
                        return Err(Error::parse("lone high surrogate in JSON string"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::parse("invalid low surrogate in JSON string"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| Error::parse("invalid JSON code point"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| Error::parse("invalid JSON code point"))?
                }
            }
            _ => return Err(Error::parse("unknown JSON escape sequence")),
        })
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape in JSON string"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse("invalid \\u escape in JSON string"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::parse("invalid \\u escape in JSON string"))
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid JSON number"))?;
        match s.parse::<f64>() {
            // overflowing literals like 1e999 parse to infinity, which
            // could not be re-serialized as valid JSON — reject them
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            Ok(_) => Err(Error::parse(format!("JSON number '{s}' out of range"))),
            Err(_) => Err(Error::parse(format!("invalid JSON number '{s}'"))),
        }
    }
}

/// Standard base64 (no line breaks), for binary payloads in JSON.
pub fn base64_encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(TABLE[(n >> 18) as usize & 63] as char);
        out.push(TABLE[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            TABLE[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            TABLE[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "s": "x"}"#;
        let v = parse(src).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        // serialized form parses back to the same value
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("line\nquote\"back\\slash\ttab\u{1}".into());
        let s = v.to_string();
        assert_eq!(parse(&s).unwrap(), v);
        // unicode escapes including a surrogate pair
        let v = parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::from(7usize).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_never_produce_invalid_json() {
        // overflowing literals are rejected at parse time...
        assert!(parse("1e999").is_err());
        assert!(parse(r#"{"id":-1e999}"#).is_err());
        // ...and programmatically-built non-finite values serialize as
        // null, so an output line always re-parses
        for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let line = Json::obj([("id", Json::Num(n))]).to_string();
            assert_eq!(line, r#"{"id":null}"#);
            assert!(parse(&line).is_ok());
        }
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\"}",
            "nul",
            "1x",
            "{}extra",
            "\"\\q\"",
            "\"\\ud800\"",
            "\"\\u12\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }
}
