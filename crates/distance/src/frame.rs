//! Packed distance frames: the SoA intermediate representation of the
//! relevance pipeline.
//!
//! The per-predicate distance vectors used to travel as
//! `Vec<Option<f64>>` — 16 bytes per element, half of them discriminant
//! padding, with a branch on every read. At millions of rows the pipeline
//! is memory-bound, not compute-bound, so the representation *is* the
//! cost model (the MonetDB lesson): a [`DistanceFrame`] stores the same
//! information as a contiguous `Vec<f64>` of values plus a [`Bitmap`]
//! validity mask — the same native-buffer + mask layout
//! `visdb_storage::ColumnData` uses for columns — cutting the bytes each
//! O(n) pass streams by ~44% and making the value walk branch-free.
//!
//! A frame is semantically *identical* to the `Option` vector it
//! replaces: row `i` is `Some(values[i])` where the mask is set, `None`
//! where it is not. [`DistanceFrame::get`] / [`DistanceFrame::iter`]
//! reproduce that view exactly (including `Some(NaN)` for defined NaN
//! distances), which is what keeps the packed pipeline bit-identical to
//! the scalar reference.
//!
//! [`FrameStats`] is the second half of the representation change: the
//! per-predicate reduction inputs (defined count, finite min/max absolute
//! distance) are accumulated *inside* the distance walk that produces the
//! frame, so the `fit_improved` normalization no longer needs a full
//! re-collect pass — and skips its selection pass entirely whenever the
//! fit covers every defined item.

/// A dense validity mask: one byte per row, `true` = the row's value is
/// defined. Matches the `Vec<bool>` masks behind
/// `visdb_storage::ColumnData` so frame chunks and column chunks slice
/// identically.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    bits: Vec<bool>,
}

impl Bitmap {
    /// An all-invalid mask of `n` rows.
    pub fn new_invalid(n: usize) -> Self {
        Bitmap {
            bits: vec![false; n],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Is row `i` defined? Out-of-range reads report undefined.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Borrow the raw mask.
    #[inline]
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Mutably borrow the raw mask.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [bool] {
        &mut self.bits
    }
}

/// Reduction inputs of one distance frame, accumulated during the chunk
/// walk that fills it — one fused pass instead of a distance pass plus a
/// stats re-collect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStats {
    /// Rows with a defined distance.
    pub defined: usize,
    /// Smallest finite absolute distance over defined rows
    /// (`+inf` when none).
    pub min_abs: f64,
    /// Largest finite absolute distance over defined rows
    /// (`-inf` when none).
    pub max_abs: f64,
    /// Defined rows whose distance is NaN or infinite.
    pub non_finite: usize,
}

impl Default for FrameStats {
    fn default() -> Self {
        FrameStats {
            defined: 0,
            min_abs: f64::INFINITY,
            max_abs: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }
}

impl FrameStats {
    /// Fold one defined distance into the stats.
    #[inline]
    pub fn record(&mut self, d: f64) {
        self.defined += 1;
        let a = d.abs();
        if a.is_finite() {
            self.min_abs = self.min_abs.min(a);
            self.max_abs = self.max_abs.max(a);
        } else {
            self.non_finite += 1;
        }
    }

    /// Merge the stats of another (disjoint) chunk. Only counts and
    /// min/max are involved, so the merge is exact and order-independent
    /// — parallel chunk walks produce bit-identical stats to the serial
    /// reference.
    pub fn merge(&mut self, other: &FrameStats) {
        self.defined += other.defined;
        self.min_abs = self.min_abs.min(other.min_abs);
        self.max_abs = self.max_abs.max(other.max_abs);
        self.non_finite += other.non_finite;
    }

    /// Stats of a full walk over an existing frame — used where a frame
    /// arrives without its stats (cache hits never need this; combiners
    /// fuse it into their own walk).
    pub fn of_frame(frame: &DistanceFrame) -> FrameStats {
        FrameStats::of_slice(frame.values(), frame.validity().as_slice())
    }

    /// Branchless stats reduction over packed buffers: four independent
    /// accumulator lanes (`f64x4`-shaped) with a scalar tail, lane masks
    /// driven by the validity bytes through [`lanes::select`] instead of
    /// a per-row `if defined` branch. Every lane op is a set operation
    /// (count, min, max) with a neutral element for masked lanes
    /// (`+inf` / `-inf`), so the result is exact and independent of lane
    /// assignment — bit-identical to the serial [`FrameStats::record`]
    /// reference, which the kernel property tests pin across lane
    /// remainders and NaN/±inf-dense inputs.
    pub fn of_slice(vals: &[f64], mask: &[bool]) -> FrameStats {
        use crate::lanes::{select, LANES};
        debug_assert_eq!(vals.len(), mask.len());
        let mut defined = [0usize; LANES];
        let mut non_finite = [0usize; LANES];
        let mut min_abs = [f64::INFINITY; LANES];
        let mut max_abs = [f64::NEG_INFINITY; LANES];
        let blocks = vals.len() / LANES * LANES;
        let (vblocks, vtail) = vals.split_at(blocks);
        let (mblocks, mtail) = mask.split_at(blocks);
        for (v4, m4) in vblocks.chunks_exact(LANES).zip(mblocks.chunks_exact(LANES)) {
            for l in 0..LANES {
                let ok = m4[l];
                let a = v4[l].abs();
                let finite = ok && a.is_finite();
                defined[l] += ok as usize;
                non_finite[l] += (ok && !a.is_finite()) as usize;
                min_abs[l] = min_abs[l].min(select(finite, a, f64::INFINITY));
                max_abs[l] = max_abs[l].max(select(finite, a, f64::NEG_INFINITY));
            }
        }
        let mut s = FrameStats {
            defined: defined.iter().sum(),
            min_abs: min_abs.iter().fold(f64::INFINITY, |m, &x| m.min(x)),
            max_abs: max_abs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x)),
            non_finite: non_finite.iter().sum(),
        };
        for (&v, &ok) in vtail.iter().zip(mtail) {
            if ok {
                s.record(v);
            }
        }
        s
    }
}

/// One distance vector in packed SoA form: 8-byte values plus a byte
/// mask, `None` rows carry a canonical `0.0` value and a cleared mask
/// bit.
#[derive(Debug, Clone, Default)]
pub struct DistanceFrame {
    values: Vec<f64>,
    validity: Bitmap,
}

impl DistanceFrame {
    /// An all-undefined frame of `n` rows (the canvas a distance walk
    /// fills in).
    pub fn undefined(n: usize) -> Self {
        DistanceFrame {
            values: vec![0.0; n],
            validity: Bitmap::new_invalid(n),
        }
    }

    /// A frame with every row defined to the same value, together with
    /// the stats the equivalent per-row `set`/`record` loop would have
    /// produced — broadcast fills (the uncorrelated EXISTS distance) are
    /// two constant fills instead of `n` individual calls.
    pub fn constant(n: usize, d: f64) -> (DistanceFrame, FrameStats) {
        let frame = DistanceFrame {
            values: vec![d; n],
            validity: Bitmap {
                bits: vec![true; n],
            },
        };
        let mut stats = FrameStats::default();
        if n > 0 {
            stats.defined = n;
            let a = d.abs();
            if a.is_finite() {
                stats.min_abs = a;
                stats.max_abs = a;
            } else {
                stats.non_finite = n;
            }
        }
        (frame, stats)
    }

    /// Build from the `Option` representation (tests, adapters).
    pub fn from_options(options: &[Option<f64>]) -> Self {
        let mut f = DistanceFrame::undefined(options.len());
        for (i, o) in options.iter().enumerate() {
            if let Some(d) = o {
                f.values[i] = *d;
                f.validity.bits[i] = true;
            }
        }
        f
    }

    /// The `Option` view of the whole frame (boundary adapters only —
    /// the hot passes stay on the packed buffers).
    pub fn to_options(&self) -> Vec<Option<f64>> {
        self.iter().collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the frame covers no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Row `i` as the `Option` the frame semantically is. Out-of-range
    /// reads yield `None`, mirroring `slice::get(..).copied().flatten()`
    /// on the old representation.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        if self.validity.get(i) {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// Iterate rows as `Option<f64>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        self.values
            .iter()
            .zip(self.validity.bits.iter())
            .map(|(&v, &ok)| ok.then_some(v))
    }

    /// Borrow the packed value buffer.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Borrow the validity mask.
    #[inline]
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Set row `i`.
    #[inline]
    pub fn set(&mut self, i: usize, d: Option<f64>) {
        match d {
            Some(v) => {
                self.values[i] = v;
                self.validity.bits[i] = true;
            }
            None => {
                self.values[i] = 0.0;
                self.validity.bits[i] = false;
            }
        }
    }

    /// Mutably borrow values and mask together (lockstep chunk walks).
    pub fn parts_mut(&mut self) -> (&mut [f64], &mut [bool]) {
        (&mut self.values, &mut self.validity.bits)
    }

    /// Split the frame into the given contiguous row ranges, returning
    /// one `(values, validity)` pair of mutable sub-slices per range —
    /// the frame equivalent of splitting a `Vec<Option<f64>>` for a
    /// chunked walk.
    pub fn split_ranges_mut(
        &mut self,
        ranges: &[(usize, usize)],
    ) -> Vec<(&mut [f64], &mut [bool])> {
        let mut out = Vec::with_capacity(ranges.len());
        let mut vals: &mut [f64] = &mut self.values;
        let mut mask: &mut [bool] = &mut self.validity.bits;
        let mut consumed = 0;
        for &(offset, len) in ranges {
            debug_assert_eq!(offset, consumed, "ranges must be contiguous");
            let (vh, vt) = vals.split_at_mut(len);
            let (mh, mt) = mask.split_at_mut(len);
            out.push((vh, mh));
            vals = vt;
            mask = mt;
            consumed += len;
        }
        debug_assert!(vals.is_empty(), "ranges must cover the frame");
        out
    }

    /// Concatenate: rows of `self` followed by rows of `tail`, as one
    /// new frame. Two buffer memcpys — including the canonical values of
    /// undefined slots, so a concat of bit-identical inputs is
    /// bit-identical to a from-scratch build over the combined rows. The
    /// append path extends cached window frames with delta evaluations
    /// this way.
    pub fn concat(&self, tail: &Self) -> Self {
        let mut values = Vec::with_capacity(self.len() + tail.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&tail.values);
        let mut bits = Vec::with_capacity(self.len() + tail.len());
        bits.extend_from_slice(&self.validity.bits);
        bits.extend_from_slice(&tail.validity.bits);
        DistanceFrame {
            values,
            validity: Bitmap { bits },
        }
    }

    /// Bitwise row equality: like `==` but NaN distances compare equal
    /// when their bit patterns match. This is the equality the
    /// bit-identity property tests assert on NaN-heavy columns (IEEE
    /// `==` can never confirm that two NaN-carrying frames agree).
    pub fn bits_eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.iter().zip(other.iter()).all(|(a, b)| match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                _ => false,
            })
    }

    /// Heap bytes held by this frame: 9 bytes per row vs the 16 of the
    /// `Vec<Option<f64>>` representation it replaced. A measurement
    /// helper (tests pin the packed layout with it); the serving
    /// layer's window cache budgets by *row count*, whose per-row cost
    /// this type roughly halves.
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
            + self.validity.bits.capacity() * std::mem::size_of::<bool>()
    }
}

/// Frames are equal when they agree row-by-row under the `Option` view —
/// the values of undefined rows are don't-care, and defined NaNs compare
/// like `Some(NaN) == Some(NaN)` does (false), exactly as the old
/// representation did.
impl PartialEq for DistanceFrame {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_option_view() {
        let opts = vec![Some(1.5), None, Some(-3.0), Some(f64::NAN), None];
        let f = DistanceFrame::from_options(&opts);
        assert_eq!(f.len(), 5);
        assert_eq!(f.get(0), Some(1.5));
        assert_eq!(f.get(1), None);
        assert_eq!(f.get(2), Some(-3.0));
        assert!(f.get(3).unwrap().is_nan());
        assert_eq!(f.get(99), None);
        let back = f.to_options();
        assert_eq!(back[0], Some(1.5));
        assert_eq!(back[1], None);
        assert!(back[3].unwrap().is_nan());
    }

    #[test]
    fn equality_ignores_undefined_values_and_respects_nan() {
        let a = DistanceFrame::from_options(&[Some(1.0), None]);
        let mut b = DistanceFrame::from_options(&[Some(1.0), None]);
        b.values[1] = 42.0; // undefined slot: don't-care
        assert_eq!(a, b);
        let nan = DistanceFrame::from_options(&[Some(f64::NAN)]);
        assert_ne!(nan, nan.clone(), "Some(NaN) != Some(NaN), as before");
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = FrameStats::default();
        a.record(3.0);
        a.record(-1.0);
        a.record(f64::NAN);
        let mut b = FrameStats::default();
        b.record(0.5);
        b.record(f64::INFINITY);
        a.merge(&b);
        assert_eq!(a.defined, 5);
        assert_eq!(a.min_abs, 0.5);
        assert_eq!(a.max_abs, 3.0);
        assert_eq!(a.non_finite, 2);
        let f = DistanceFrame::from_options(&[Some(3.0), Some(-1.0), None, Some(0.5)]);
        let s = FrameStats::of_frame(&f);
        assert_eq!(s.defined, 3);
        assert_eq!(s.min_abs, 0.5);
        assert_eq!(s.max_abs, 3.0);
    }

    #[test]
    fn constant_fill_matches_per_row_loop() {
        for (n, d) in [(5usize, 2.5f64), (3, -1.0), (4, f64::INFINITY), (0, 7.0)] {
            let (frame, stats) = DistanceFrame::constant(n, d);
            let mut expect_frame = DistanceFrame::undefined(n);
            let mut expect_stats = FrameStats::default();
            for i in 0..n {
                expect_frame.set(i, Some(d));
                expect_stats.record(d);
            }
            assert_eq!(frame, expect_frame, "n={n} d={d}");
            assert_eq!(stats, expect_stats, "n={n} d={d}");
        }
    }

    #[test]
    fn split_ranges_cover_in_lockstep() {
        let mut f = DistanceFrame::undefined(10);
        let ranges = [(0usize, 4usize), (4, 3), (7, 3)];
        for (ri, (vals, mask)) in f.split_ranges_mut(&ranges).into_iter().enumerate() {
            assert_eq!(vals.len(), ranges[ri].1);
            assert_eq!(mask.len(), ranges[ri].1);
            for (j, (v, m)) in vals.iter_mut().zip(mask.iter_mut()).enumerate() {
                *v = (ranges[ri].0 + j) as f64;
                *m = true;
            }
        }
        for i in 0..10 {
            assert_eq!(f.get(i), Some(i as f64));
        }
    }

    #[test]
    fn heap_accounting_is_packed() {
        let f = DistanceFrame::undefined(1000);
        assert!(f.heap_bytes() >= 9 * 1000);
        assert!(f.heap_bytes() < 16 * 1000, "must beat Vec<Option<f64>>");
    }
}
