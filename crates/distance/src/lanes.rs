//! Branchless, SIMD-shaped lane primitives shared by the hot kernels.
//!
//! The fused normalize/combine/stats walks used to take a branch per row
//! (`if defined { ... }`). On mostly-defined frames the branch is
//! predictable but still defeats the autovectorizer: a data-dependent
//! store inside the loop body keeps LLVM from turning the walk into
//! `f64x4` blocks. The primitives here restructure those walks into the
//! shape the autovectorizer provably takes:
//!
//! * [`select`] — a branch-free conditional move. Both arms are always
//!   evaluated, so callers must make the untaken arm side-effect-free
//!   (a neutral element: `0.0`, `+inf` for a min, `-inf` for a max).
//! * [`mask_word`] — eight validity bytes read as one little-endian
//!   `u64`, so a kernel can classify a whole 8-row block as all-defined
//!   ([`ALL_VALID_WORD`]), all-undefined (`0`) or mixed with a single
//!   integer compare, and only the mixed blocks pay per-lane selects.
//! * [`LANES`] / [`WORD_ROWS`] — the fixed widths the kernels unroll to:
//!   4 accumulator lanes (`f64x4`-shaped, one 256-bit vector register)
//!   and 8-row mask words, with scalar tails for the remainder.
//!
//! Everything here is *exact*: `select` is a move, not arithmetic, so a
//! kernel built from these primitives produces bit-identical results to
//! its branchy reference as long as the neutral elements are chosen so
//! the untaken arm cannot influence the result (the kernel property
//! tests assert exactly that, per lane remainder and NaN/±inf pattern).

/// Accumulator lanes the branchless kernels unroll to: `f64x4`, one
/// AVX2-width register, also a clean 2×2 pair on 128-bit NEON/SSE.
pub const LANES: usize = 4;

/// Rows per validity word: eight one-byte mask lanes per `u64`.
pub const WORD_ROWS: usize = 8;

/// The [`mask_word`] value of a fully-defined 8-row block (eight
/// little-endian `0x01` bytes).
pub const ALL_VALID_WORD: u64 = 0x0101_0101_0101_0101;

/// Branch-free conditional move: `if cond { then } else { otherwise }`
/// compiled as a select, not a jump. Both arms are unconditionally
/// evaluated — keep the untaken arm a neutral constant.
#[inline(always)]
pub fn select(cond: bool, then: f64, otherwise: f64) -> f64 {
    if cond {
        then
    } else {
        otherwise
    }
}

/// Eight validity bytes as one little-endian `u64` lane-mask word.
/// `mask` must hold at least [`WORD_ROWS`] entries; lane `i` contributes
/// byte `i` (`0x01` defined, `0x00` undefined), so a block is
/// all-defined iff the word equals [`ALL_VALID_WORD`] and all-undefined
/// iff it is zero.
#[inline(always)]
pub fn mask_word(mask: &[bool]) -> u64 {
    debug_assert!(mask.len() >= WORD_ROWS);
    let bytes: [u8; WORD_ROWS] = std::array::from_fn(|i| mask[i] as u8);
    u64::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_is_exact_on_nan_and_inf() {
        let nan = f64::NAN;
        assert_eq!(select(true, nan, 0.0).to_bits(), nan.to_bits());
        assert_eq!(select(false, nan, 0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(select(true, f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
        // -0.0 survives as -0.0 (a move, not an add)
        assert_eq!(select(true, -0.0, 1.0).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn mask_words_classify_blocks() {
        assert_eq!(mask_word(&[true; 8]), ALL_VALID_WORD);
        assert_eq!(mask_word(&[false; 8]), 0);
        let mixed = [true, false, true, true, false, true, true, true];
        let w = mask_word(&mixed);
        assert_ne!(w, ALL_VALID_WORD);
        assert_ne!(w, 0);
        for (i, &m) in mixed.iter().enumerate() {
            assert_eq!((w >> (8 * i)) & 0xff == 1, m, "lane {i}");
        }
    }
}
