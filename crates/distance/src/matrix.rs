//! Distance matrices for ordinal and nominal datatypes (§3).
//!
//! A [`DistanceMatrix`] enumerates a domain of category values and stores
//! a full pairwise distance table. For ordinal domains the rank difference
//! is the natural default ([`DistanceMatrix::ordinal`]); for nominal
//! domains the 0/1 discrete metric ([`DistanceMatrix::discrete`]) — but
//! the application may provide any table (e.g. perceptual color
//! similarity, ICD diagnosis proximity).

use std::collections::HashMap;

use visdb_types::{Error, Result};

use crate::Distance;

/// A symmetric distance table over an enumerated string domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    values: Vec<String>,
    index: HashMap<String, usize>,
    /// Row-major `values.len() × values.len()` table.
    table: Vec<f64>,
    /// Whether the domain is ordered (enables signed distances).
    ordinal: bool,
}

impl DistanceMatrix {
    /// Build from an explicit table. The table must be square, zero on the
    /// diagonal and symmetric.
    pub fn new(values: Vec<String>, table: Vec<f64>, ordinal: bool) -> Result<Self> {
        let n = values.len();
        if table.len() != n * n {
            return Err(Error::invalid_parameter(
                "table",
                format!("expected {}x{} entries, got {}", n, n, table.len()),
            ));
        }
        for i in 0..n {
            if table[i * n + i] != 0.0 {
                return Err(Error::invalid_parameter(
                    "table",
                    format!("diagonal entry ({i},{i}) must be 0"),
                ));
            }
            for j in 0..i {
                if (table[i * n + j] - table[j * n + i]).abs() > 1e-12 {
                    return Err(Error::invalid_parameter(
                        "table",
                        format!("asymmetric entries at ({i},{j})"),
                    ));
                }
            }
        }
        let mut index = HashMap::with_capacity(n);
        for (i, v) in values.iter().enumerate() {
            if index.insert(v.clone(), i).is_some() {
                return Err(Error::invalid_parameter(
                    "values",
                    format!("duplicate domain value '{v}'"),
                ));
            }
        }
        Ok(DistanceMatrix {
            values,
            index,
            table,
            ordinal,
        })
    }

    /// Ordinal domain: distance = rank difference.
    pub fn ordinal<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        let n = values.len();
        let mut table = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                table[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        DistanceMatrix::new(values, table, true).expect("rank table is valid")
    }

    /// Nominal domain: the discrete 0/1 metric.
    pub fn discrete<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        let n = values.len();
        let mut table = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    table[i * n + j] = 1.0;
                }
            }
        }
        DistanceMatrix::new(values, table, false).expect("discrete table is valid")
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for an empty domain.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether signed distances are meaningful (ordinal domains).
    pub fn is_ordinal(&self) -> bool {
        self.ordinal
    }

    /// Rank of a domain value.
    pub fn rank(&self, value: &str) -> Option<usize> {
        self.index.get(value).copied()
    }

    /// Distance between two domain values. For ordinal domains the result
    /// is signed by rank order (`a` below `b` → negative); for nominal
    /// domains it is the unsigned table entry. Unknown values → undefined.
    pub fn distance(&self, a: &str, b: &str) -> Distance {
        let (i, j) = (self.rank(a)?, self.rank(b)?);
        let d = self.table[i * self.len() + j];
        if self.ordinal {
            Some(if i < j { -d } else { d })
        } else {
            Some(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_rank_distance_is_signed() {
        let m = DistanceMatrix::ordinal(["low", "medium", "high", "extreme"]);
        assert_eq!(m.distance("low", "high"), Some(-2.0));
        assert_eq!(m.distance("extreme", "medium"), Some(2.0));
        assert_eq!(m.distance("low", "low"), Some(0.0));
        assert!(m.is_ordinal());
    }

    #[test]
    fn discrete_metric() {
        let m = DistanceMatrix::discrete(["red", "green", "blue"]);
        assert_eq!(m.distance("red", "blue"), Some(1.0));
        assert_eq!(m.distance("red", "red"), Some(0.0));
        assert!(!m.is_ordinal());
    }

    #[test]
    fn unknown_values_are_undefined() {
        let m = DistanceMatrix::discrete(["a"]);
        assert_eq!(m.distance("a", "zzz"), None);
    }

    #[test]
    fn custom_table_validation() {
        // non-square
        assert!(DistanceMatrix::new(vec!["a".into(), "b".into()], vec![0.0; 3], false).is_err());
        // nonzero diagonal
        assert!(DistanceMatrix::new(
            vec!["a".into(), "b".into()],
            vec![1.0, 2.0, 2.0, 0.0],
            false
        )
        .is_err());
        // asymmetric
        assert!(DistanceMatrix::new(
            vec!["a".into(), "b".into()],
            vec![0.0, 2.0, 3.0, 0.0],
            false
        )
        .is_err());
        // duplicate values
        assert!(DistanceMatrix::new(
            vec!["a".into(), "a".into()],
            vec![0.0, 1.0, 1.0, 0.0],
            false
        )
        .is_err());
        // valid custom table
        let m = DistanceMatrix::new(
            vec!["sunny".into(), "cloudy".into()],
            vec![0.0, 0.5, 0.5, 0.0],
            false,
        )
        .unwrap();
        assert_eq!(m.distance("sunny", "cloudy"), Some(0.5));
    }
}
