//! # visdb-distance
//!
//! Datatype- and application-dependent distance functions (§3, §5).
//!
//! "The approximate results are determined using distance functions for
//! each of the selection predicates ... The distance functions are
//! datatype and application dependent and must be provided by the
//! application. Examples for distance functions are the numerical
//! difference (for metric types), distance matrices (for ordinal and
//! nominal types), lexicographical, character-wise, substring or phonetic
//! difference (for strings) and so on."
//!
//! ## Conventions
//!
//! * A distance is a **signed** `f64`. `0.0` means the predicate is
//!   *fulfilled exactly*; the magnitude measures how far the data item is
//!   from fulfilling it; the sign gives the *direction* of the deviation
//!   (needed for the fig 1b two-axis arrangement, §4.2).
//! * `None` means the distance is **undefined** — NULL operands, negations
//!   of non-invertible predicates (§4.4), or incompatible types. The
//!   relevance layer treats undefined as "maximally distant / not
//!   displayable".

pub mod batch;
pub mod frame;
pub mod geo;
pub mod lanes;
pub mod matrix;
pub mod numeric;
pub mod registry;
pub mod string;
pub mod time;

pub use frame::{Bitmap, DistanceFrame, FrameStats};
pub use matrix::DistanceMatrix;
pub use registry::{ColumnDistance, DistanceResolver};
pub use string::StringDistance;

/// A signed predicate distance; `Some(0.0)` = fulfilled, `None` = undefined.
pub type Distance = Option<f64>;
