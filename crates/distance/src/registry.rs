//! Per-column distance configuration.
//!
//! "Our approach ... requires no knowledge on the application other than
//! the distance and weighting functions" (§6): applications plug in
//! distance behaviour per column, and everything else is generic. The
//! [`DistanceResolver`] is that plug-in point — it decides, for a given
//! `(table, column)`, which [`ColumnDistance`] applies, and computes
//! value-to-value distances.

use std::collections::HashMap;
use std::sync::Arc;

use visdb_types::{DataType, TypeClass, Value};

use crate::geo;
use crate::matrix::DistanceMatrix;
use crate::numeric;
use crate::string::StringDistance;
use crate::Distance;

/// The distance behaviour of one column.
#[derive(Debug, Clone)]
pub enum ColumnDistance {
    /// Metric: signed numerical difference.
    Numeric,
    /// Enumerated domain with a distance matrix (ordinal or nominal).
    Matrix(Arc<DistanceMatrix>),
    /// String distance of the given kind.
    String(StringDistance),
    /// Geographic: haversine meters (unsigned).
    Geo,
}

impl ColumnDistance {
    /// Distance between two values under this behaviour.
    /// NULL or type-incompatible operands are undefined.
    pub fn value_distance(&self, a: &Value, b: &Value) -> Distance {
        match self {
            ColumnDistance::Numeric => numeric::equal_to(a.as_f64()?, b.as_f64()?),
            ColumnDistance::Matrix(m) => m.distance(a.as_str()?, b.as_str()?),
            ColumnDistance::String(kind) => Some(kind.distance(a.as_str()?, b.as_str()?)),
            ColumnDistance::Geo => {
                let (la, lb) = (a.as_location()?, b.as_location()?);
                if !la.is_valid() || !lb.is_valid() {
                    return None;
                }
                Some(geo::haversine_m(la, lb))
            }
        }
    }

    /// Whether distances of this behaviour are signed (have a direction).
    pub fn is_signed(&self) -> bool {
        match self {
            ColumnDistance::Numeric => true,
            ColumnDistance::Matrix(m) => m.is_ordinal(),
            ColumnDistance::String(_) | ColumnDistance::Geo => false,
        }
    }
}

/// Resolves `(table, column)` to a [`ColumnDistance`], with sensible
/// defaults derived from the column's [`DataType`] / [`TypeClass`].
#[derive(Debug, Clone, Default)]
pub struct DistanceResolver {
    overrides: HashMap<(String, String), ColumnDistance>,
    default_string: StringDistance,
}

impl DistanceResolver {
    /// Resolver with default behaviour everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the default string distance (initially [`StringDistance::Edit`]).
    pub fn with_default_string(mut self, kind: StringDistance) -> Self {
        self.default_string = kind;
        self
    }

    /// Override the behaviour of one column.
    pub fn set(
        &mut self,
        table: impl Into<String>,
        column: impl Into<String>,
        dist: ColumnDistance,
    ) {
        self.overrides.insert((table.into(), column.into()), dist);
    }

    /// Resolve the behaviour for a column.
    pub fn resolve(
        &self,
        table: &str,
        column: &str,
        data_type: DataType,
        class: TypeClass,
    ) -> ColumnDistance {
        if let Some(d) = self.overrides.get(&(table.to_string(), column.to_string())) {
            return d.clone();
        }
        match (data_type, class) {
            (DataType::Location, _) => ColumnDistance::Geo,
            (DataType::Str, _) => ColumnDistance::String(self.default_string),
            (_, TypeClass::Metric) => ColumnDistance::Numeric,
            // ordinal/nominal numeric codes without a declared matrix fall
            // back to numeric difference — the least surprising default
            _ => ColumnDistance::Numeric,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_types::Location;

    #[test]
    fn numeric_value_distance() {
        let d = ColumnDistance::Numeric;
        assert_eq!(
            d.value_distance(&Value::Float(12.0), &Value::Int(10)),
            Some(2.0)
        );
        assert_eq!(d.value_distance(&Value::Null, &Value::Int(10)), None);
        assert_eq!(d.value_distance(&Value::from("x"), &Value::Int(10)), None);
        assert!(d.is_signed());
    }

    #[test]
    fn string_value_distance() {
        let d = ColumnDistance::String(StringDistance::Edit);
        assert_eq!(
            d.value_distance(&Value::from("abc"), &Value::from("abd")),
            Some(1.0)
        );
        assert!(!d.is_signed());
    }

    #[test]
    fn matrix_value_distance_signedness() {
        let ord = ColumnDistance::Matrix(Arc::new(DistanceMatrix::ordinal(["s", "m", "l"])));
        assert!(ord.is_signed());
        assert_eq!(
            ord.value_distance(&Value::from("s"), &Value::from("l")),
            Some(-2.0)
        );
        let nom = ColumnDistance::Matrix(Arc::new(DistanceMatrix::discrete(["a", "b"])));
        assert!(!nom.is_signed());
    }

    #[test]
    fn geo_value_distance() {
        let d = ColumnDistance::Geo;
        let a = Value::Location(Location::new(48.0, 11.0));
        let b = Value::Location(Location::new(48.0, 11.0));
        assert_eq!(d.value_distance(&a, &b), Some(0.0));
        let bad = Value::Location(Location::new(99.0, 0.0));
        assert_eq!(d.value_distance(&a, &bad), None);
    }

    #[test]
    fn resolver_defaults_and_overrides() {
        let mut r = DistanceResolver::new();
        let d = r.resolve("W", "Temperature", DataType::Float, TypeClass::Metric);
        assert!(matches!(d, ColumnDistance::Numeric));
        let d = r.resolve("W", "Station", DataType::Str, TypeClass::Nominal);
        assert!(matches!(d, ColumnDistance::String(StringDistance::Edit)));
        r.set(
            "W",
            "Station",
            ColumnDistance::String(StringDistance::Phonetic),
        );
        let d = r.resolve("W", "Station", DataType::Str, TypeClass::Nominal);
        assert!(matches!(
            d,
            ColumnDistance::String(StringDistance::Phonetic)
        ));
    }

    #[test]
    fn resolver_default_string_kind() {
        let r = DistanceResolver::new().with_default_string(StringDistance::Substring);
        let d = r.resolve("T", "c", DataType::Str, TypeClass::Nominal);
        assert!(matches!(
            d,
            ColumnDistance::String(StringDistance::Substring)
        ));
    }
}
