//! Numeric (metric) distance functions.
//!
//! These are the paper's "numerical difference (for metric types)" (§3),
//! extended to all comparison operators, ranges, and the "medium value ±
//! deviation" slider form.

use crate::Distance;

/// Distance of `value` from fulfilling `value > threshold` (or `>=`).
///
/// Fulfilled → 0. Otherwise the signed shortfall `value - threshold`
/// (negative: the value is *below* where it should be).
///
/// `>` and `>=` are deliberately not distinguished for distance purposes:
/// on continuous domains the boundary has measure zero, and the exact
/// boolean check (`visdb-baseline`) handles strictness.
pub fn greater_than(value: f64, threshold: f64) -> Distance {
    if value.is_nan() || threshold.is_nan() {
        return None;
    }
    if value >= threshold {
        Some(0.0)
    } else {
        Some(value - threshold)
    }
}

/// Distance of `value` from fulfilling `value < threshold` (or `<=`).
/// Positive when the value overshoots the bound.
pub fn less_than(value: f64, threshold: f64) -> Distance {
    if value.is_nan() || threshold.is_nan() {
        return None;
    }
    if value <= threshold {
        Some(0.0)
    } else {
        Some(value - threshold)
    }
}

/// Distance of `value` from fulfilling `value = target`: the signed
/// numerical difference (§3).
pub fn equal_to(value: f64, target: f64) -> Distance {
    if value.is_nan() || target.is_nan() {
        return None;
    }
    Some(value - target)
}

/// Distance of `value` from fulfilling `value <> target`.
///
/// When already different the distance is 0; when equal there is no
/// continuous "direction" to escape — we report a unit distance whose
/// scale is normalized away later (§5.2 normalizes every predicate's
/// distances to a fixed range).
pub fn not_equal_to(value: f64, target: f64) -> Distance {
    if value.is_nan() || target.is_nan() {
        return None;
    }
    if value != target {
        Some(0.0)
    } else {
        Some(1.0)
    }
}

/// Distance of `value` from the inclusive range `[low, high]`: 0 inside,
/// signed distance to the violated bound outside.
pub fn in_range(value: f64, low: f64, high: f64) -> Distance {
    if value.is_nan() || low.is_nan() || high.is_nan() {
        return None;
    }
    if value < low {
        Some(value - low)
    } else if value > high {
        Some(value - high)
    } else {
        Some(0.0)
    }
}

/// Distance of `value` from `center ± deviation` (the §4.3 slider with a
/// "medium value and some allowed deviation"): 0 within the allowance,
/// otherwise the signed excess beyond it.
pub fn around(value: f64, center: f64, deviation: f64) -> Distance {
    if value.is_nan() || center.is_nan() || deviation.is_nan() || deviation < 0.0 {
        return None;
    }
    let diff = value - center;
    if diff.abs() <= deviation {
        Some(0.0)
    } else {
        Some(diff - deviation.copysign(diff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greater_than_semantics() {
        assert_eq!(greater_than(20.0, 15.0), Some(0.0));
        assert_eq!(greater_than(15.0, 15.0), Some(0.0));
        assert_eq!(greater_than(10.0, 15.0), Some(-5.0));
        assert_eq!(greater_than(f64::NAN, 1.0), None);
    }

    #[test]
    fn less_than_semantics() {
        assert_eq!(less_than(50.0, 60.0), Some(0.0));
        assert_eq!(less_than(70.0, 60.0), Some(10.0));
    }

    #[test]
    fn equal_is_signed_difference() {
        assert_eq!(equal_to(12.0, 10.0), Some(2.0));
        assert_eq!(equal_to(8.0, 10.0), Some(-2.0));
        assert_eq!(equal_to(10.0, 10.0), Some(0.0));
    }

    #[test]
    fn not_equal_unit_distance_when_equal() {
        assert_eq!(not_equal_to(1.0, 1.0), Some(1.0));
        assert_eq!(not_equal_to(2.0, 1.0), Some(0.0));
    }

    #[test]
    fn range_distance() {
        assert_eq!(in_range(5.0, 0.0, 10.0), Some(0.0));
        assert_eq!(in_range(-3.0, 0.0, 10.0), Some(-3.0));
        assert_eq!(in_range(12.5, 0.0, 10.0), Some(2.5));
        assert_eq!(in_range(0.0, 0.0, 10.0), Some(0.0));
        assert_eq!(in_range(10.0, 0.0, 10.0), Some(0.0));
    }

    #[test]
    fn around_distance() {
        assert_eq!(around(10.0, 10.0, 2.0), Some(0.0));
        assert_eq!(around(11.9, 10.0, 2.0), Some(0.0));
        assert_eq!(around(13.0, 10.0, 2.0), Some(1.0));
        assert_eq!(around(6.5, 10.0, 2.0), Some(-1.5));
        assert_eq!(around(1.0, 0.0, -1.0), None);
    }

    #[test]
    fn around_with_zero_deviation_is_equality() {
        assert_eq!(around(12.0, 10.0, 0.0), Some(2.0));
        assert_eq!(around(10.0, 10.0, 0.0), Some(0.0));
    }
}
