//! String distance functions: "lexicographical, character-wise, substring
//! or phonetic difference (for strings)" (§3), plus edit distance as used
//! throughout the IR literature the paper builds on ([HD 80]).
//!
//! String distances are unsigned (there is no meaningful direction), so
//! they always return non-negative values.

/// Which string distance to use for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StringDistance {
    /// First-difference lexicographic distance.
    Lexicographic,
    /// Positional character difference (Hamming with length penalty).
    CharacterWise,
    /// Substring containment distance.
    Substring,
    /// Phonetic (Soundex code) distance.
    Phonetic,
    /// Levenshtein edit distance (the default: most broadly applicable).
    #[default]
    Edit,
}

impl StringDistance {
    /// Dispatch to the chosen function.
    pub fn distance(self, a: &str, b: &str) -> f64 {
        match self {
            StringDistance::Lexicographic => lexicographic(a, b),
            StringDistance::CharacterWise => character_wise(a, b),
            StringDistance::Substring => substring(a, b),
            StringDistance::Phonetic => phonetic(a, b),
            StringDistance::Edit => levenshtein(a, b) as f64,
        }
    }
}

/// Lexicographic distance: 0 for equal strings; otherwise the byte
/// difference at the first differing position, damped by that position
/// (differences early in the string matter more), plus 1 so that any
/// proper-prefix relation still yields a nonzero distance.
pub fn lexicographic(a: &str, b: &str) -> f64 {
    lexicographic_bytes(a.as_bytes(), b.as_bytes())
}

/// [`lexicographic`] on raw byte slices — the form the packed-column
/// kernels call so no UTF-8 re-validation happens per row. The distance
/// is byte-defined, so this is the same function, not an approximation.
#[inline]
pub fn lexicographic_bytes(ab: &[u8], bb: &[u8]) -> f64 {
    if ab == bb {
        return 0.0;
    }
    let n = ab.len().min(bb.len());
    for i in 0..n {
        if ab[i] != bb[i] {
            let diff = (f64::from(ab[i]) - f64::from(bb[i])).abs();
            return 1.0 + diff / (i as f64 + 1.0);
        }
    }
    // one is a proper prefix of the other
    1.0 + (ab.len().abs_diff(bb.len())) as f64 / (n as f64 + 1.0)
}

/// Character-wise distance: number of positions (over the longer length)
/// where the characters differ — a Hamming distance where length overhang
/// counts as mismatches.
pub fn character_wise(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let n = ac.len().max(bc.len());
    let mut d = 0usize;
    for i in 0..n {
        if ac.get(i) != bc.get(i) {
            d += 1;
        }
    }
    d as f64
}

/// Longest common substring length (dynamic programming, O(|a|·|b|)).
fn longest_common_substring(a: &[char], b: &[char]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut best = 0usize;
    for &ca in a {
        let mut cur = vec![0usize; b.len() + 1];
        for (j, &cb) in b.iter().enumerate() {
            if ca == cb {
                cur[j + 1] = prev[j] + 1;
                best = best.max(cur[j + 1]);
            }
        }
        prev = cur;
    }
    best
}

/// Substring distance of pattern `a` against text `b`: 0 if `a` occurs in
/// `b`, otherwise the number of pattern characters *not* covered by the
/// longest common substring.
pub fn substring(a: &str, b: &str) -> f64 {
    if a.is_empty() || b.contains(a) {
        return 0.0;
    }
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    (ac.len() - longest_common_substring(&ac, &bc)) as f64
}

/// Classic 4-character Soundex code (letter + 3 digits).
pub fn soundex(s: &str) -> [u8; 4] {
    fn code(c: u8) -> u8 {
        match c {
            b'b' | b'f' | b'p' | b'v' => b'1',
            b'c' | b'g' | b'j' | b'k' | b'q' | b's' | b'x' | b'z' => b'2',
            b'd' | b't' => b'3',
            b'l' => b'4',
            b'm' | b'n' => b'5',
            b'r' => b'6',
            _ => 0, // vowels, h, w, y and non-letters
        }
    }
    let lower = s.to_ascii_lowercase();
    let letters: Vec<u8> = lower.bytes().filter(u8::is_ascii_lowercase).collect();
    let mut out = [b'0'; 4];
    let Some(&first) = letters.first() else {
        return out;
    };
    out[0] = first.to_ascii_uppercase();
    let mut prev = code(first);
    let mut n = 1;
    for &c in &letters[1..] {
        if n >= 4 {
            break;
        }
        let k = code(c);
        // 'h' and 'w' do not reset the previous code (standard Soundex)
        if c == b'h' || c == b'w' {
            continue;
        }
        if k != 0 && k != prev {
            out[n] = k;
            n += 1;
        }
        prev = k;
    }
    out
}

/// Phonetic distance: Hamming distance between Soundex codes (0..=4).
pub fn phonetic(a: &str, b: &str) -> f64 {
    let ca = soundex(a);
    let cb = soundex(b);
    ca.iter().zip(cb.iter()).filter(|(x, y)| x != y).count() as f64
}

/// Levenshtein edit distance (two-row DP, O(|a|·|b|) time, O(|b|) space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    if ac.is_empty() {
        return bc.len();
    }
    if bc.is_empty() {
        return ac.len();
    }
    let mut prev: Vec<usize> = (0..=bc.len()).collect();
    let mut cur = vec![0usize; bc.len() + 1];
    for (i, &ca) in ac.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in bc.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bc.len()]
}

// ---------------------------------------------------------------------------
// Batch kernels over packed string columns.
//
// These operate on the raw offset+bytes layout of
// `visdb_storage::StrColumn`, passed as plain slices (this crate does not
// depend on storage). Like the numeric batch kernels they fill a
// chunk-sized `vals`/`defined` pair; callers derive `FrameStats` from the
// filled slices. `offsets` must hold `vals.len() + 1` entries (absolute
// positions into `bytes` — slice it per chunk), `mask` is the chunk's
// validity bitmap.

/// Row `i`'s byte range of a packed layout.
#[inline]
fn row_bytes<'a>(bytes: &'a [u8], offsets: &[u32], i: usize) -> &'a [u8] {
    &bytes[offsets[i] as usize..offsets[i + 1] as usize]
}

/// Generic packed-layout driver: `f(row_str)` per valid row, `None` rows
/// and NULLs write the canonical undefined `(0.0, false)` pair. The one
/// UTF-8 decode per row replaces a `Value::Str` heap clone.
pub fn packed_map(
    bytes: &[u8],
    offsets: &[u32],
    mask: Option<&[bool]>,
    vals: &mut [f64],
    defined: &mut [bool],
    mut f: impl FnMut(&str) -> Option<f64>,
) {
    debug_assert_eq!(offsets.len(), vals.len() + 1);
    for i in 0..vals.len() {
        let valid = mask.is_none_or(|m| m[i]);
        let d = if valid {
            let s = std::str::from_utf8(row_bytes(bytes, offsets, i))
                .expect("column bytes are valid UTF-8");
            f(s)
        } else {
            None
        };
        vals[i] = d.unwrap_or(0.0);
        defined[i] = d.is_some();
    }
}

/// Batch lexicographic distance to a constant, straight over the byte
/// layout: no UTF-8 validation, no `&str` construction, early exit at the
/// first differing byte (the "prefix-pruned" form — shared prefixes cost
/// exactly their length, nothing else). Bit-identical to the scalar
/// [`lexicographic`] per row.
pub fn lexicographic_packed(
    bytes: &[u8],
    offsets: &[u32],
    mask: Option<&[bool]>,
    b: &str,
    vals: &mut [f64],
    defined: &mut [bool],
) {
    debug_assert_eq!(offsets.len(), vals.len() + 1);
    let bb = b.as_bytes();
    for i in 0..vals.len() {
        let valid = mask.is_none_or(|m| m[i]);
        if valid {
            vals[i] = lexicographic_bytes(row_bytes(bytes, offsets, i), bb);
            defined[i] = true;
        } else {
            vals[i] = 0.0;
            defined[i] = false;
        }
    }
}

/// Batch character-wise distance to a constant: the constant's chars are
/// decoded once and each row streams its chars without the per-side
/// `Vec<char>` allocations of the scalar form. Bit-identical to
/// [`character_wise`] per row.
pub fn character_wise_packed(
    bytes: &[u8],
    offsets: &[u32],
    mask: Option<&[bool]>,
    b: &str,
    vals: &mut [f64],
    defined: &mut [bool],
) {
    debug_assert_eq!(offsets.len(), vals.len() + 1);
    let bc: Vec<char> = b.chars().collect();
    for i in 0..vals.len() {
        let valid = mask.is_none_or(|m| m[i]);
        if valid {
            let a = std::str::from_utf8(row_bytes(bytes, offsets, i))
                .expect("column bytes are valid UTF-8");
            let mut d = 0usize;
            let mut k = 0usize;
            for ca in a.chars() {
                if bc.get(k) != Some(&ca) {
                    d += 1;
                }
                k += 1;
            }
            d += bc.len().saturating_sub(k);
            vals[i] = d as f64;
            defined[i] = true;
        } else {
            vals[i] = 0.0;
            defined[i] = false;
        }
    }
}

/// Build a per-dictionary-code distance table: `f` runs once per distinct
/// value instead of once per row. Returned as a packed `(vals, defined)`
/// pair ready for [`gather_table`].
pub fn code_table<'a>(
    values: impl IntoIterator<Item = &'a str>,
    mut f: impl FnMut(&str) -> Option<f64>,
) -> (Vec<f64>, Vec<bool>) {
    let mut tvals = Vec::new();
    let mut tdef = Vec::new();
    for v in values {
        let d = f(v);
        tvals.push(d.unwrap_or(0.0));
        tdef.push(d.is_some());
    }
    (tvals, tdef)
}

/// Gather a per-code table through row codes: the whole string/ordinal
/// distance evaluation collapses to one indexed load per row.
pub fn gather_table(
    codes: &[u32],
    mask: Option<&[bool]>,
    tvals: &[f64],
    tdef: &[bool],
    vals: &mut [f64],
    defined: &mut [bool],
) {
    debug_assert_eq!(codes.len(), vals.len());
    for i in 0..vals.len() {
        let c = codes[i] as usize;
        let valid = mask.is_none_or(|m| m[i]) && tdef[c];
        vals[i] = if valid { tvals[c] } else { 0.0 };
        defined[i] = valid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn soundex_classics() {
        assert_eq!(&soundex("Robert"), b"R163");
        assert_eq!(&soundex("Rupert"), b"R163");
        assert_eq!(&soundex("Tymczak"), b"T522");
        assert_eq!(&soundex("Pfister"), b"P236");
        assert_eq!(&soundex("Ashcraft"), b"A261");
        assert_eq!(&soundex(""), b"0000");
    }

    #[test]
    fn phonetic_distance_zero_for_homophones() {
        assert_eq!(phonetic("Robert", "Rupert"), 0.0);
        assert!(phonetic("Smith", "Jones") > 0.0);
    }

    #[test]
    fn substring_containment_is_zero() {
        assert_eq!(substring("ozon", "ozone level"), 0.0);
        assert_eq!(substring("", "anything"), 0.0);
        assert_eq!(substring("abc", "xbcy"), 1.0); // "bc" covered, 'a' not
        assert_eq!(substring("abc", "zzz"), 3.0);
    }

    #[test]
    fn character_wise_counts_positions() {
        assert_eq!(character_wise("abc", "abc"), 0.0);
        assert_eq!(character_wise("abc", "abd"), 1.0);
        assert_eq!(character_wise("abc", "abcdef"), 3.0);
        assert_eq!(character_wise("", ""), 0.0);
    }

    #[test]
    fn lexicographic_orders_by_first_difference() {
        assert_eq!(lexicographic("x", "x"), 0.0);
        // early differences weigh more than late ones
        assert!(lexicographic("aaa", "zaa") > lexicographic("aaa", "aaz"));
        // prefix relation is nonzero
        assert!(lexicographic("abc", "abcdef") > 0.0);
    }

    #[test]
    fn all_kinds_are_symmetric_enough() {
        // edit / character-wise / phonetic are symmetric by construction
        for kind in [
            StringDistance::Edit,
            StringDistance::CharacterWise,
            StringDistance::Phonetic,
            StringDistance::Lexicographic,
        ] {
            assert_eq!(
                kind.distance("house", "mouse"),
                kind.distance("mouse", "house")
            );
        }
    }

    /// Pack strings into the offset+bytes layout the kernels take.
    fn pack(rows: &[&str]) -> (Vec<u8>, Vec<u32>) {
        let mut bytes = Vec::new();
        let mut offsets = vec![0u32];
        for r in rows {
            bytes.extend_from_slice(r.as_bytes());
            offsets.push(bytes.len() as u32);
        }
        (bytes, offsets)
    }

    #[test]
    fn packed_kernels_match_scalar() {
        let rows = ["abc", "", "日本語", "abd", "zzz", "abc"];
        let (bytes, offsets) = pack(&rows);
        let mask = [true, true, false, true, true, true];
        let target = "abc";
        let n = rows.len();
        let (mut v1, mut d1) = (vec![0.0; n], vec![false; n]);
        let (mut v2, mut d2) = (vec![0.0; n], vec![false; n]);

        lexicographic_packed(&bytes, &offsets, Some(&mask), target, &mut v1, &mut d1);
        packed_map(&bytes, &offsets, Some(&mask), &mut v2, &mut d2, |s| {
            Some(lexicographic(s, target))
        });
        for i in 0..n {
            if mask[i] {
                assert_eq!(v1[i].to_bits(), lexicographic(rows[i], target).to_bits());
            } else {
                assert!(!d1[i] && !d2[i]);
            }
            assert_eq!((v1[i].to_bits(), d1[i]), (v2[i].to_bits(), d2[i]));
        }

        character_wise_packed(&bytes, &offsets, None, target, &mut v1, &mut d1);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(v1[i], character_wise(r, target), "row {i}");
            assert!(d1[i]);
        }
    }

    #[test]
    fn code_table_gather_matches_direct() {
        let uniques = ["red", "green", "blue"];
        let codes = [0u32, 2, 1, 1, 0];
        let mask = [true, true, true, false, true];
        let (tvals, tdef) = code_table(uniques.iter().copied(), |s| {
            if s == "green" {
                None
            } else {
                Some(levenshtein(s, "red") as f64)
            }
        });
        let (mut vals, mut defined) = (vec![9.0; 5], vec![true; 5]);
        gather_table(&codes, Some(&mask), &tvals, &tdef, &mut vals, &mut defined);
        assert_eq!(defined, [true, true, false, false, true]);
        assert_eq!(vals[0], 0.0); // red vs red
        assert_eq!(vals[1], levenshtein("blue", "red") as f64);
        assert_eq!(vals[2], 0.0); // green undefined -> canonical pair
        assert_eq!(vals[4], 0.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for kind in [
            StringDistance::Edit,
            StringDistance::CharacterWise,
            StringDistance::Phonetic,
            StringDistance::Lexicographic,
            StringDistance::Substring,
        ] {
            assert_eq!(kind.distance("alpha", "alpha"), 0.0, "{kind:?}");
        }
    }
}
