//! String distance functions: "lexicographical, character-wise, substring
//! or phonetic difference (for strings)" (§3), plus edit distance as used
//! throughout the IR literature the paper builds on ([HD 80]).
//!
//! String distances are unsigned (there is no meaningful direction), so
//! they always return non-negative values.

/// Which string distance to use for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StringDistance {
    /// First-difference lexicographic distance.
    Lexicographic,
    /// Positional character difference (Hamming with length penalty).
    CharacterWise,
    /// Substring containment distance.
    Substring,
    /// Phonetic (Soundex code) distance.
    Phonetic,
    /// Levenshtein edit distance (the default: most broadly applicable).
    #[default]
    Edit,
}

impl StringDistance {
    /// Dispatch to the chosen function.
    pub fn distance(self, a: &str, b: &str) -> f64 {
        match self {
            StringDistance::Lexicographic => lexicographic(a, b),
            StringDistance::CharacterWise => character_wise(a, b),
            StringDistance::Substring => substring(a, b),
            StringDistance::Phonetic => phonetic(a, b),
            StringDistance::Edit => levenshtein(a, b) as f64,
        }
    }
}

/// Lexicographic distance: 0 for equal strings; otherwise the byte
/// difference at the first differing position, damped by that position
/// (differences early in the string matter more), plus 1 so that any
/// proper-prefix relation still yields a nonzero distance.
pub fn lexicographic(a: &str, b: &str) -> f64 {
    if a == b {
        return 0.0;
    }
    let ab = a.as_bytes();
    let bb = b.as_bytes();
    let n = ab.len().min(bb.len());
    for i in 0..n {
        if ab[i] != bb[i] {
            let diff = (f64::from(ab[i]) - f64::from(bb[i])).abs();
            return 1.0 + diff / (i as f64 + 1.0);
        }
    }
    // one is a proper prefix of the other
    1.0 + (ab.len().abs_diff(bb.len())) as f64 / (n as f64 + 1.0)
}

/// Character-wise distance: number of positions (over the longer length)
/// where the characters differ — a Hamming distance where length overhang
/// counts as mismatches.
pub fn character_wise(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let n = ac.len().max(bc.len());
    let mut d = 0usize;
    for i in 0..n {
        if ac.get(i) != bc.get(i) {
            d += 1;
        }
    }
    d as f64
}

/// Longest common substring length (dynamic programming, O(|a|·|b|)).
fn longest_common_substring(a: &[char], b: &[char]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut best = 0usize;
    for &ca in a {
        let mut cur = vec![0usize; b.len() + 1];
        for (j, &cb) in b.iter().enumerate() {
            if ca == cb {
                cur[j + 1] = prev[j] + 1;
                best = best.max(cur[j + 1]);
            }
        }
        prev = cur;
    }
    best
}

/// Substring distance of pattern `a` against text `b`: 0 if `a` occurs in
/// `b`, otherwise the number of pattern characters *not* covered by the
/// longest common substring.
pub fn substring(a: &str, b: &str) -> f64 {
    if a.is_empty() || b.contains(a) {
        return 0.0;
    }
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    (ac.len() - longest_common_substring(&ac, &bc)) as f64
}

/// Classic 4-character Soundex code (letter + 3 digits).
pub fn soundex(s: &str) -> [u8; 4] {
    fn code(c: u8) -> u8 {
        match c {
            b'b' | b'f' | b'p' | b'v' => b'1',
            b'c' | b'g' | b'j' | b'k' | b'q' | b's' | b'x' | b'z' => b'2',
            b'd' | b't' => b'3',
            b'l' => b'4',
            b'm' | b'n' => b'5',
            b'r' => b'6',
            _ => 0, // vowels, h, w, y and non-letters
        }
    }
    let lower = s.to_ascii_lowercase();
    let letters: Vec<u8> = lower.bytes().filter(u8::is_ascii_lowercase).collect();
    let mut out = [b'0'; 4];
    let Some(&first) = letters.first() else {
        return out;
    };
    out[0] = first.to_ascii_uppercase();
    let mut prev = code(first);
    let mut n = 1;
    for &c in &letters[1..] {
        if n >= 4 {
            break;
        }
        let k = code(c);
        // 'h' and 'w' do not reset the previous code (standard Soundex)
        if c == b'h' || c == b'w' {
            continue;
        }
        if k != 0 && k != prev {
            out[n] = k;
            n += 1;
        }
        prev = k;
    }
    out
}

/// Phonetic distance: Hamming distance between Soundex codes (0..=4).
pub fn phonetic(a: &str, b: &str) -> f64 {
    let ca = soundex(a);
    let cb = soundex(b);
    ca.iter().zip(cb.iter()).filter(|(x, y)| x != y).count() as f64
}

/// Levenshtein edit distance (two-row DP, O(|a|·|b|) time, O(|b|) space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    if ac.is_empty() {
        return bc.len();
    }
    if bc.is_empty() {
        return ac.len();
    }
    let mut prev: Vec<usize> = (0..=bc.len()).collect();
    let mut cur = vec![0usize; bc.len() + 1];
    for (i, &ca) in ac.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in bc.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bc.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn soundex_classics() {
        assert_eq!(&soundex("Robert"), b"R163");
        assert_eq!(&soundex("Rupert"), b"R163");
        assert_eq!(&soundex("Tymczak"), b"T522");
        assert_eq!(&soundex("Pfister"), b"P236");
        assert_eq!(&soundex("Ashcraft"), b"A261");
        assert_eq!(&soundex(""), b"0000");
    }

    #[test]
    fn phonetic_distance_zero_for_homophones() {
        assert_eq!(phonetic("Robert", "Rupert"), 0.0);
        assert!(phonetic("Smith", "Jones") > 0.0);
    }

    #[test]
    fn substring_containment_is_zero() {
        assert_eq!(substring("ozon", "ozone level"), 0.0);
        assert_eq!(substring("", "anything"), 0.0);
        assert_eq!(substring("abc", "xbcy"), 1.0); // "bc" covered, 'a' not
        assert_eq!(substring("abc", "zzz"), 3.0);
    }

    #[test]
    fn character_wise_counts_positions() {
        assert_eq!(character_wise("abc", "abc"), 0.0);
        assert_eq!(character_wise("abc", "abd"), 1.0);
        assert_eq!(character_wise("abc", "abcdef"), 3.0);
        assert_eq!(character_wise("", ""), 0.0);
    }

    #[test]
    fn lexicographic_orders_by_first_difference() {
        assert_eq!(lexicographic("x", "x"), 0.0);
        // early differences weigh more than late ones
        assert!(lexicographic("aaa", "zaa") > lexicographic("aaa", "aaz"));
        // prefix relation is nonzero
        assert!(lexicographic("abc", "abcdef") > 0.0);
    }

    #[test]
    fn all_kinds_are_symmetric_enough() {
        // edit / character-wise / phonetic are symmetric by construction
        for kind in [
            StringDistance::Edit,
            StringDistance::CharacterWise,
            StringDistance::Phonetic,
            StringDistance::Lexicographic,
        ] {
            assert_eq!(
                kind.distance("house", "mouse"),
                kind.distance("mouse", "house")
            );
        }
    }

    #[test]
    fn identity_of_indiscernibles() {
        for kind in [
            StringDistance::Edit,
            StringDistance::CharacterWise,
            StringDistance::Phonetic,
            StringDistance::Lexicographic,
            StringDistance::Substring,
        ] {
            assert_eq!(kind.distance("alpha", "alpha"), 0.0, "{kind:?}");
        }
    }
}
