//! Vectorized (columnar) numeric distance kernels.
//!
//! The paper's efficiency claim (§3) budgets one `O(n)` distance pass per
//! selection predicate. The per-tuple evaluation path pays far more than
//! the constant factor that claim assumed: every row materialises a
//! `Value`, re-dispatches on the column's enum representation and
//! re-matches the comparison operator. The kernels here hoist all of that
//! out of the loop — the operator and target are resolved once, the input
//! is a native `&[f64]` / `&[i64]` borrowed straight from
//! `visdb_storage::ColumnData`, and NULLs come in as an optional `&[bool]`
//! validity bitmap — so the inner loop is a branch-predictable walk over a
//! contiguous buffer.
//!
//! Every kernel delegates the per-element arithmetic to the scalar
//! functions in [`crate::numeric`], which makes the results **bit
//! identical** to the per-tuple path by construction (the relevance layer
//! property-tests this end to end).

use crate::frame::FrameStats;
use crate::numeric;

/// A native numeric element the kernels can iterate directly.
///
/// The `to_f64` projection matches `ColumnData::get_f64` for the
/// corresponding column types (floats pass through, integers and
/// timestamps widen).
pub trait NativeNumeric: Copy + Send + Sync {
    /// Widen to the `f64` domain the distance functions operate in.
    fn to_f64(self) -> f64;
}

impl NativeNumeric for f64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl NativeNumeric for i64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// Which comparison a [`NumericKernel::Compare`] evaluates. `>` / `>=`
/// and `<` / `<=` collapse to one kernel each, exactly like the scalar
/// path (see [`numeric::greater_than`] on why strictness is not
/// distance-relevant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareKernel {
    /// `column > target` / `column >= target`.
    Greater,
    /// `column < target` / `column <= target`.
    Less,
    /// `column = target`.
    Equal,
    /// `column <> target`.
    NotEqual,
}

/// One predicate's worth of per-row work, fully resolved before the loop.
///
/// A `Compare` with a `None` target (NULL or non-numeric literal) yields
/// undefined distances everywhere, matching the scalar path's behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericKernel {
    /// `column <op> target`.
    Compare(CompareKernel, Option<f64>),
    /// `column BETWEEN low AND high` (inclusive).
    InRange(f64, f64),
    /// `column AROUND center ± deviation` (the §4.3 slider form).
    Around(f64, f64),
}

/// Fill `out[i]` with `f(xs[i])` for valid rows, `None` for NULL rows.
/// The no-NULLs case gets its own loop so fully-populated columns skip
/// the bitmap lookup entirely.
#[inline]
fn fill<T: NativeNumeric>(
    xs: &[T],
    validity: Option<&[bool]>,
    out: &mut [Option<f64>],
    f: impl Fn(f64) -> Option<f64>,
) {
    debug_assert_eq!(xs.len(), out.len());
    match validity {
        None => {
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = f(x.to_f64());
            }
        }
        Some(mask) => {
            debug_assert_eq!(mask.len(), out.len());
            for ((o, &x), &valid) in out.iter_mut().zip(xs).zip(mask) {
                *o = if valid { f(x.to_f64()) } else { None };
            }
        }
    }
}

/// Run one kernel over a column slice, writing one distance per row.
///
/// `xs`, `validity` and `out` must cover the same rows — callers slice
/// all three identically when walking a column in chunks.
pub fn run<T: NativeNumeric>(
    xs: &[T],
    validity: Option<&[bool]>,
    kernel: NumericKernel,
    out: &mut [Option<f64>],
) {
    match kernel {
        NumericKernel::Compare(_, None) => out.fill(None),
        NumericKernel::Compare(CompareKernel::Greater, Some(t)) => {
            fill(xs, validity, out, |x| numeric::greater_than(x, t))
        }
        NumericKernel::Compare(CompareKernel::Less, Some(t)) => {
            fill(xs, validity, out, |x| numeric::less_than(x, t))
        }
        NumericKernel::Compare(CompareKernel::Equal, Some(t)) => {
            fill(xs, validity, out, |x| numeric::equal_to(x, t))
        }
        NumericKernel::Compare(CompareKernel::NotEqual, Some(t)) => {
            fill(xs, validity, out, |x| numeric::not_equal_to(x, t))
        }
        NumericKernel::InRange(low, high) => {
            fill(xs, validity, out, |x| numeric::in_range(x, low, high))
        }
        NumericKernel::Around(center, deviation) => {
            fill(xs, validity, out, |x| numeric::around(x, center, deviation))
        }
    }
}

/// The packed-frame sibling of [`fill`]: write values and validity into
/// the two SoA buffers of a `DistanceFrame` chunk and accumulate the
/// per-predicate reduction stats for the same walk. Undefined rows get a
/// canonical `0.0` value and a cleared mask bit.
///
/// The store loop is branchless — `vals[i] = d.unwrap_or(0.0)` and
/// `mask[i] = d.is_some()` are unconditional moves, so the only branches
/// left in the walk are the ones inside the scalar distance function
/// itself. The stats reduction then runs as the 4-lane
/// [`FrameStats::of_slice`] kernel over the buffers the store just
/// filled (still warm in cache) instead of a data-dependent
/// [`FrameStats::record`] per defined row; both restructurings are
/// exact, so results and stats stay bit-identical to the per-tuple path.
#[inline]
fn fill_frame<T: NativeNumeric>(
    xs: &[T],
    validity: Option<&[bool]>,
    vals: &mut [f64],
    mask: &mut [bool],
    f: impl Fn(f64) -> Option<f64>,
) -> FrameStats {
    debug_assert_eq!(xs.len(), vals.len());
    debug_assert_eq!(xs.len(), mask.len());
    match validity {
        None => {
            for ((v, m), &x) in vals.iter_mut().zip(mask.iter_mut()).zip(xs) {
                let d = f(x.to_f64());
                *v = d.unwrap_or(0.0);
                *m = d.is_some();
            }
        }
        Some(in_mask) => {
            debug_assert_eq!(in_mask.len(), vals.len());
            for (((v, m), &x), &valid) in vals.iter_mut().zip(mask.iter_mut()).zip(xs).zip(in_mask)
            {
                let d = if valid { f(x.to_f64()) } else { None };
                *v = d.unwrap_or(0.0);
                *m = d.is_some();
            }
        }
    }
    FrameStats::of_slice(vals, mask)
}

/// [`run`] over a packed `DistanceFrame` chunk: one pass writes the
/// 8-byte value buffer, the byte validity mask **and** the reduction
/// stats the normalization fit needs — the distance pass, the stats
/// pass and the `Option` re-collect of the old representation, fused.
/// The per-element arithmetic still delegates to [`crate::numeric`], so
/// results stay bit-identical to the per-tuple path.
pub fn run_frame<T: NativeNumeric>(
    xs: &[T],
    validity: Option<&[bool]>,
    kernel: NumericKernel,
    vals: &mut [f64],
    mask: &mut [bool],
) -> FrameStats {
    match kernel {
        NumericKernel::Compare(_, None) => {
            vals.fill(0.0);
            mask.fill(false);
            FrameStats::default()
        }
        NumericKernel::Compare(CompareKernel::Greater, Some(t)) => {
            fill_frame(xs, validity, vals, mask, |x| numeric::greater_than(x, t))
        }
        NumericKernel::Compare(CompareKernel::Less, Some(t)) => {
            fill_frame(xs, validity, vals, mask, |x| numeric::less_than(x, t))
        }
        NumericKernel::Compare(CompareKernel::Equal, Some(t)) => {
            fill_frame(xs, validity, vals, mask, |x| numeric::equal_to(x, t))
        }
        NumericKernel::Compare(CompareKernel::NotEqual, Some(t)) => {
            fill_frame(xs, validity, vals, mask, |x| numeric::not_equal_to(x, t))
        }
        NumericKernel::InRange(low, high) => fill_frame(xs, validity, vals, mask, |x| {
            numeric::in_range(x, low, high)
        }),
        NumericKernel::Around(center, deviation) => fill_frame(xs, validity, vals, mask, |x| {
            numeric::around(x, center, deviation)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::DistanceFrame;

    fn run_f64(xs: &[f64], validity: Option<&[bool]>, k: NumericKernel) -> Vec<Option<f64>> {
        let mut out = vec![Some(f64::NAN); xs.len()];
        run(xs, validity, k, &mut out);
        out
    }

    #[test]
    fn compare_kernels_match_the_scalar_functions() {
        let xs = [10.0, 15.0, 20.0, f64::NAN];
        for (kernel, scalar) in [
            (
                CompareKernel::Greater,
                numeric::greater_than as fn(f64, f64) -> Option<f64>,
            ),
            (CompareKernel::Less, numeric::less_than),
            (CompareKernel::Equal, numeric::equal_to),
            (CompareKernel::NotEqual, numeric::not_equal_to),
        ] {
            let out = run_f64(&xs, None, NumericKernel::Compare(kernel, Some(15.0)));
            let expect: Vec<Option<f64>> = xs.iter().map(|&x| scalar(x, 15.0)).collect();
            assert_eq!(out, expect, "{kernel:?}");
        }
    }

    #[test]
    fn validity_masks_nulls() {
        let xs = [1.0, 2.0, 3.0];
        let mask = [true, false, true];
        let out = run_f64(
            &xs,
            Some(&mask),
            NumericKernel::Compare(CompareKernel::Greater, Some(2.5)),
        );
        assert_eq!(out, vec![Some(-1.5), None, Some(0.0)]);
    }

    #[test]
    fn missing_target_is_undefined_everywhere() {
        let xs = [1.0, 2.0];
        let out = run_f64(
            &xs,
            None,
            NumericKernel::Compare(CompareKernel::Equal, None),
        );
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn int_columns_widen_like_get_f64() {
        let xs: [i64; 3] = [5, 10, 15];
        let mut out = vec![None; 3];
        run(&xs, None, NumericKernel::InRange(8.0, 12.0), &mut out);
        assert_eq!(out, vec![Some(-3.0), Some(0.0), Some(3.0)]);
    }

    #[test]
    fn around_kernel() {
        let xs = [6.5, 10.0, 13.0];
        let mut out = vec![None; 3];
        run(&xs, None, NumericKernel::Around(10.0, 2.0), &mut out);
        assert_eq!(out, vec![Some(-1.5), Some(0.0), Some(1.0)]);
    }

    #[test]
    fn frame_kernels_match_option_kernels_and_fuse_stats() {
        let xs = [10.0, 15.0, 20.0, f64::NAN, -3.0];
        let mask = [true, true, false, true, true];
        for kernel in [
            NumericKernel::Compare(CompareKernel::Greater, Some(14.0)),
            NumericKernel::Compare(CompareKernel::Less, Some(14.0)),
            NumericKernel::Compare(CompareKernel::Equal, Some(14.0)),
            NumericKernel::Compare(CompareKernel::NotEqual, Some(14.0)),
            NumericKernel::Compare(CompareKernel::Equal, None),
            NumericKernel::InRange(8.0, 12.0),
            NumericKernel::Around(10.0, 2.0),
        ] {
            for validity in [None, Some(&mask[..])] {
                let mut opts = vec![Some(f64::NAN); xs.len()];
                run(&xs, validity, kernel, &mut opts);
                let mut frame = DistanceFrame::undefined(xs.len());
                let (vals, valid) = frame.parts_mut();
                let stats = run_frame(&xs, validity, kernel, vals, valid);
                assert_eq!(frame, DistanceFrame::from_options(&opts), "{kernel:?}");
                assert_eq!(stats.defined, opts.iter().flatten().count());
                let finite: Vec<f64> = opts
                    .iter()
                    .flatten()
                    .map(|d| d.abs())
                    .filter(|d| d.is_finite())
                    .collect();
                let expect_max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let expect_min = finite.iter().copied().fold(f64::INFINITY, f64::min);
                assert_eq!(stats.max_abs, expect_max, "{kernel:?}");
                assert_eq!(stats.min_abs, expect_min, "{kernel:?}");
            }
        }
    }
}
