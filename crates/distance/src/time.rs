//! Temporal distance functions for the `with-time-diff(c)` connection
//! (fig 3) and time-based predicates.
//!
//! The paper's example query requires "between recording temperature and
//! ozone there is a time difference of two hours" (§4.1) — a
//! *parameterised* join whose distance is how far the actual time
//! difference deviates from the expected offset.

use visdb_types::Timestamp;

use crate::Distance;

/// Signed distance of a timestamp pair from an expected offset:
/// `(left - right) - expected`. Zero iff the recordings are exactly
/// `expected` seconds apart (in the declared direction); the sign says
/// whether `left` is too late (+) or too early (−).
pub fn time_diff(left: Timestamp, right: Timestamp, expected: f64) -> Distance {
    if !expected.is_finite() {
        return None;
    }
    Some((left - right) as f64 - expected)
}

/// Distance from simultaneity within a tolerance window of ± `tol`
/// seconds: 0 inside, signed excess outside. `with-time-diff(c)` joins
/// that accept a window rather than an exact lag use this form.
pub fn within_window(left: Timestamp, right: Timestamp, expected: f64, tol: f64) -> Distance {
    if !expected.is_finite() || !tol.is_finite() || tol < 0.0 {
        return None;
    }
    let diff = (left - right) as f64 - expected;
    if diff.abs() <= tol {
        Some(0.0)
    } else {
        Some(diff - tol.copysign(diff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_lag_is_zero() {
        // ozone recorded 2h after temperature
        assert_eq!(time_diff(7200, 0, 7200.0), Some(0.0));
        assert_eq!(time_diff(0, 0, 0.0), Some(0.0));
    }

    #[test]
    fn sign_encodes_direction() {
        assert_eq!(time_diff(8000, 0, 7200.0), Some(800.0)); // too late
        assert_eq!(time_diff(7000, 0, 7200.0), Some(-200.0)); // too early
    }

    #[test]
    fn window_tolerance() {
        assert_eq!(within_window(7300, 0, 7200.0, 150.0), Some(0.0));
        assert_eq!(within_window(7500, 0, 7200.0, 150.0), Some(150.0));
        assert_eq!(within_window(6900, 0, 7200.0, 150.0), Some(-150.0));
        assert_eq!(within_window(0, 0, 0.0, -1.0), None);
    }
}
