//! Geographic distance functions for the spatial connections
//! (`at-same-location`, `with-distance(m)`; §4.4: "Special joins, e.g. to
//! relate geographical locations ... require more complex distance
//! functions").

use visdb_types::Location;

use crate::Distance;

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle (haversine) distance in meters.
pub fn haversine_m(a: Location, b: Location) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// Fast equirectangular approximation in meters — adequate for the
/// station-proximity joins of the environmental workload (distances well
/// under 100 km) and ~5x cheaper than haversine.
pub fn equirectangular_m(a: Location, b: Location) -> f64 {
    let x = (b.lon - a.lon).to_radians() * ((a.lat + b.lat) / 2.0).to_radians().cos();
    let y = (b.lat - a.lat).to_radians();
    EARTH_RADIUS_M * (x * x + y * y).sqrt()
}

/// Distance of a location pair from fulfilling "within `radius_m` meters":
/// 0 inside the radius, otherwise the excess in meters. Radius 0 encodes
/// `at-same-location`. Undefined for invalid coordinates.
pub fn within_m(a: Location, b: Location, radius_m: f64) -> Distance {
    if !a.is_valid() || !b.is_valid() || !radius_m.is_finite() || radius_m < 0.0 {
        return None;
    }
    let d = haversine_m(a, b);
    Some((d - radius_m).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MUNICH: Location = Location {
        lat: 48.137,
        lon: 11.575,
    };
    const BERLIN: Location = Location {
        lat: 52.52,
        lon: 13.405,
    };

    #[test]
    fn munich_berlin_is_about_504_km() {
        let d = haversine_m(MUNICH, BERLIN);
        assert!((d - 504_000.0).abs() < 5_000.0, "got {d}");
    }

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(haversine_m(MUNICH, MUNICH), 0.0);
        assert_eq!(equirectangular_m(MUNICH, MUNICH), 0.0);
    }

    #[test]
    fn equirectangular_close_to_haversine_for_short_hops() {
        let near = Location::new(48.140, 11.580);
        let h = haversine_m(MUNICH, near);
        let e = equirectangular_m(MUNICH, near);
        assert!((h - e).abs() / h < 0.01, "h={h} e={e}");
    }

    #[test]
    fn within_semantics() {
        assert_eq!(within_m(MUNICH, MUNICH, 0.0), Some(0.0));
        let d = within_m(MUNICH, BERLIN, 600_000.0).unwrap();
        assert_eq!(d, 0.0);
        let d = within_m(MUNICH, BERLIN, 100_000.0).unwrap();
        assert!(d > 300_000.0);
        assert_eq!(within_m(Location::new(f64::NAN, 0.0), BERLIN, 10.0), None);
        assert_eq!(within_m(MUNICH, BERLIN, -1.0), None);
    }

    #[test]
    fn symmetry() {
        assert!((haversine_m(MUNICH, BERLIN) - haversine_m(BERLIN, MUNICH)).abs() < 1e-9);
    }
}
