//! Just-noticeable-difference accounting (§4.2, [LRR 92]).
//!
//! The paper justifies color over gray scales because "the number of just
//! noticeable differences (JNDs) is much higher". We make that claim
//! measurable: walk a colormap path in small steps, accumulate the CIE76
//! ΔE*ab arc length, and divide by the ΔE of one JND (≈ 2.3, the standard
//! value from the color-difference literature).

use crate::map::Colormap;
use crate::space::{delta_e76, rgb_to_lab};

/// ΔE*ab corresponding to one just-noticeable difference.
pub const JND_DELTA_E: f64 = 2.3;

/// Perceptual arc length of a colormap path in CIELAB, sampled at
/// `samples` points (≥ 2).
pub fn path_arc_length(map: &Colormap, samples: usize) -> f64 {
    let samples = samples.max(2);
    let mut total = 0.0;
    let mut prev = rgb_to_lab(map.sample(0.0));
    for i in 1..samples {
        let t = i as f64 / (samples - 1) as f64;
        let cur = rgb_to_lab(map.sample(t));
        total += delta_e76(prev, cur);
        prev = cur;
    }
    total
}

/// Number of just-noticeable differences along a colormap path.
pub fn count_jnds(map: &Colormap, samples: usize) -> f64 {
    path_arc_length(map, samples) / JND_DELTA_E
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ColormapKind;

    #[test]
    fn visdb_colormap_beats_grayscale_on_jnds() {
        // the paper's core perceptual claim (claim C4)
        let visdb = count_jnds(&Colormap::new(ColormapKind::VisDb), 512);
        let gray = count_jnds(&Colormap::new(ColormapKind::Grayscale), 512);
        assert!(
            visdb > 1.5 * gray,
            "expected the color path to have many more JNDs: visdb={visdb:.1} gray={gray:.1}"
        );
    }

    #[test]
    fn grayscale_jnds_close_to_lightness_range() {
        // white(L=100) -> black(L=0): arc length 100, ~43 JNDs
        let gray = count_jnds(&Colormap::new(ColormapKind::Grayscale), 512);
        assert!((gray - 100.0 / JND_DELTA_E).abs() < 2.0, "gray={gray:.1}");
    }

    #[test]
    fn arc_length_is_sampling_stable() {
        let m = Colormap::new(ColormapKind::VisDb);
        let coarse = path_arc_length(&m, 128);
        let fine = path_arc_length(&m, 1024);
        // refinement can only reveal more curvature, and not much more
        assert!(fine >= coarse * 0.99);
        assert!(fine <= coarse * 1.25, "coarse={coarse:.1} fine={fine:.1}");
    }

    #[test]
    fn degenerate_sampling_clamps() {
        let m = Colormap::new(ColormapKind::VisDb);
        assert!(path_arc_length(&m, 0) >= 0.0);
    }
}
