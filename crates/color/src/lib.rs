//! # visdb-color
//!
//! Mapping relevance to color (§4.2 of the paper).
//!
//! "Mapping the relevance factors to colors corresponds to the task of
//! finding an adequate color scale for a single parameter distribution.
//! The advantage of color over gray scales is that the number of just
//! noticeable differences (JNDs) is much higher. The main task ... is to
//! find a path through color space that maximizes the number of JNDs,
//! but, at the same time, is intuitive for the application domain. ...
//! we ... found experimentally that ... a colormap with quite constant
//! saturation, an increasing luminosity (intensity) and a hue (color)
//! ranging from yellow over green, blue and red to almost black is a
//! good choice to depict the distance from the correct answers."
//!
//! * [`space`] — sRGB/HSV/CIEXYZ/CIELAB conversions and ΔE*ab.
//! * [`map`] — the VisDB colormap (yellow → green → blue → red → almost
//!   black), a gray-scale baseline, and 256-entry LUT quantization.
//! * [`jnd`] — counting just-noticeable differences along a colormap
//!   path (ΔE*ab ≥ 2.3 per JND), making the paper's claim measurable.

pub mod jnd;
pub mod map;
pub mod space;

pub use jnd::{count_jnds, JND_DELTA_E};
pub use map::{Colormap, ColormapKind, BACKGROUND, HIGHLIGHT};
pub use space::{delta_e76, hsv_to_rgb, rgb_to_lab, Lab, Rgb};
