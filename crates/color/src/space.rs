//! Color-space conversions: HSV → sRGB → CIEXYZ → CIELAB, plus ΔE*ab.
//!
//! CIELAB is the perceptually-uniform space the JND analysis needs; HSV
//! is the convenient space for authoring the hue path the paper
//! describes. Conversions follow the standard sRGB (IEC 61966-2-1) and
//! CIE definitions with the D65 white point.

/// An 8-bit sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Construct from channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Pack as 0xRRGGBB.
    pub fn to_u32(self) -> u32 {
        (u32::from(self.r) << 16) | (u32::from(self.g) << 8) | u32::from(self.b)
    }

    /// Perceived luminance (Rec. 601 luma), 0..=255.
    pub fn luma(self) -> f64 {
        0.299 * f64::from(self.r) + 0.587 * f64::from(self.g) + 0.114 * f64::from(self.b)
    }
}

/// A CIELAB color (D65).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lab {
    /// Lightness, 0..=100.
    pub l: f64,
    /// Green–red axis.
    pub a: f64,
    /// Blue–yellow axis.
    pub b: f64,
}

/// HSV → sRGB. `h` in degrees (any value, wrapped), `s`, `v` in [0, 1].
pub fn hsv_to_rgb(h: f64, s: f64, v: f64) -> Rgb {
    let s = s.clamp(0.0, 1.0);
    let v = v.clamp(0.0, 1.0);
    let h = h.rem_euclid(360.0) / 60.0;
    let i = h.floor() as i64 % 6;
    let f = h - h.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    let (r, g, b) = match i {
        0 => (v, t, p),
        1 => (q, v, p),
        2 => (p, v, t),
        3 => (p, q, v),
        4 => (t, p, v),
        _ => (v, p, q),
    };
    let to8 = |x: f64| (x * 255.0).round().clamp(0.0, 255.0) as u8;
    Rgb::new(to8(r), to8(g), to8(b))
}

fn srgb_to_linear(c: u8) -> f64 {
    let c = f64::from(c) / 255.0;
    if c <= 0.04045 {
        c / 12.92
    } else {
        ((c + 0.055) / 1.055).powf(2.4)
    }
}

/// sRGB → CIELAB (D65 white point).
pub fn rgb_to_lab(rgb: Rgb) -> Lab {
    let r = srgb_to_linear(rgb.r);
    let g = srgb_to_linear(rgb.g);
    let b = srgb_to_linear(rgb.b);
    // sRGB D65 matrix
    let x = 0.4124564 * r + 0.3575761 * g + 0.1804375 * b;
    let y = 0.2126729 * r + 0.7151522 * g + 0.0721750 * b;
    let z = 0.0193339 * r + 0.1191920 * g + 0.9503041 * b;
    // D65 reference white
    let (xn, yn, zn) = (0.95047, 1.0, 1.08883);
    fn f(t: f64) -> f64 {
        const D: f64 = 6.0 / 29.0;
        if t > D * D * D {
            t.cbrt()
        } else {
            t / (3.0 * D * D) + 4.0 / 29.0
        }
    }
    let (fx, fy, fz) = (f(x / xn), f(y / yn), f(z / zn));
    Lab {
        l: 116.0 * fy - 16.0,
        a: 500.0 * (fx - fy),
        b: 200.0 * (fy - fz),
    }
}

/// CIE76 color difference ΔE*ab — the classic JND metric (ΔE ≈ 2.3 is one
/// just-noticeable difference).
pub fn delta_e76(a: Lab, b: Lab) -> f64 {
    ((a.l - b.l).powi(2) + (a.a - b.a).powi(2) + (a.b - b.b).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsv_primaries() {
        assert_eq!(hsv_to_rgb(0.0, 1.0, 1.0), Rgb::new(255, 0, 0));
        assert_eq!(hsv_to_rgb(120.0, 1.0, 1.0), Rgb::new(0, 255, 0));
        assert_eq!(hsv_to_rgb(240.0, 1.0, 1.0), Rgb::new(0, 0, 255));
        assert_eq!(hsv_to_rgb(60.0, 1.0, 1.0), Rgb::new(255, 255, 0));
        assert_eq!(hsv_to_rgb(0.0, 0.0, 1.0), Rgb::new(255, 255, 255));
        assert_eq!(hsv_to_rgb(0.0, 0.0, 0.0), Rgb::new(0, 0, 0));
    }

    #[test]
    fn hue_wraps() {
        assert_eq!(hsv_to_rgb(360.0, 1.0, 1.0), hsv_to_rgb(0.0, 1.0, 1.0));
        assert_eq!(hsv_to_rgb(-120.0, 1.0, 1.0), hsv_to_rgb(240.0, 1.0, 1.0));
    }

    #[test]
    fn lab_white_and_black() {
        let white = rgb_to_lab(Rgb::new(255, 255, 255));
        assert!((white.l - 100.0).abs() < 0.01, "L={}", white.l);
        assert!(white.a.abs() < 0.01 && white.b.abs() < 0.01);
        let black = rgb_to_lab(Rgb::new(0, 0, 0));
        assert!(black.l.abs() < 0.01);
    }

    #[test]
    fn lab_known_values() {
        // sRGB red is approximately L=53.2, a=80.1, b=67.2
        let red = rgb_to_lab(Rgb::new(255, 0, 0));
        assert!((red.l - 53.2).abs() < 0.5, "L={}", red.l);
        assert!((red.a - 80.1).abs() < 1.0, "a={}", red.a);
        assert!((red.b - 67.2).abs() < 1.0, "b={}", red.b);
    }

    #[test]
    fn delta_e_properties() {
        let a = rgb_to_lab(Rgb::new(10, 20, 30));
        let b = rgb_to_lab(Rgb::new(200, 100, 50));
        assert_eq!(delta_e76(a, a), 0.0);
        assert!((delta_e76(a, b) - delta_e76(b, a)).abs() < 1e-12);
        assert!(delta_e76(a, b) > 0.0);
    }

    #[test]
    fn rgb_packing_and_luma() {
        assert_eq!(Rgb::new(0x12, 0x34, 0x56).to_u32(), 0x123456);
        assert!(Rgb::new(255, 255, 255).luma() > Rgb::new(0, 0, 0).luma());
        assert!(Rgb::new(0, 255, 0).luma() > Rgb::new(0, 0, 255).luma());
    }
}
