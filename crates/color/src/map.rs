//! The VisDB colormap and its gray-scale baseline.
//!
//! The map is a path through HSV with "quite constant saturation" and a
//! hue running yellow (60°) → green (120°) → blue (240°) → red (360°) →
//! almost black, with luminosity (value) falling monotonically so that
//! *brighter = more relevant*. Distance 0 (exact answers) is pure yellow;
//! the largest displayed distance is almost black.

use visdb_types::{Error, Result};

use crate::space::{hsv_to_rgb, Rgb};

/// Window background for cells holding no data item.
pub const BACKGROUND: Rgb = Rgb::new(24, 24, 24);

/// Highlight color for selected tuples (§4.3 "to get the data item
/// highlighted in all visualization parts"): pure white, which no
/// colormap entry uses.
pub const HIGHLIGHT: Rgb = Rgb::new(255, 255, 255);

/// Which colormap to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColormapKind {
    /// The paper's yellow→green→blue→red→black path.
    #[default]
    VisDb,
    /// Gray-scale baseline (white → black) used by the JND comparison
    /// (claim C4).
    Grayscale,
    /// Heat map (white→yellow→red→black), a common alternative included
    /// for ablation.
    Heat,
}

/// A 256-entry quantized colormap: normalized distance `d ∈ [0, 255]`
/// indexes the LUT directly ("the range [dmin, dmax] ... to a fixed
/// range (e.g. [0, 255])", §5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Colormap {
    kind: ColormapKind,
    lut: Vec<Rgb>,
}

impl Colormap {
    /// Build the LUT for a kind.
    pub fn new(kind: ColormapKind) -> Self {
        let lut = (0..256)
            .map(|i| Self::sample_kind(kind, i as f64 / 255.0))
            .collect();
        Colormap { kind, lut }
    }

    /// The colormap kind.
    pub fn kind(&self) -> ColormapKind {
        self.kind
    }

    /// Continuous sample at `t ∈ [0, 1]` (0 = exact answer).
    pub fn sample(&self, t: f64) -> Rgb {
        Self::sample_kind(self.kind, t.clamp(0.0, 1.0))
    }

    fn sample_kind(kind: ColormapKind, t: f64) -> Rgb {
        match kind {
            ColormapKind::VisDb => visdb_path(t),
            ColormapKind::Grayscale => {
                let v = ((1.0 - t) * 255.0).round() as u8;
                Rgb::new(v, v, v)
            }
            ColormapKind::Heat => heat_path(t),
        }
    }

    /// Color for a normalized distance in `[0, 255]`. Values outside the
    /// range are an error (normalization guarantees the range).
    pub fn color_for_distance(&self, d: f64) -> Result<Rgb> {
        if !(0.0..=255.0).contains(&d) {
            return Err(Error::invalid_parameter(
                "distance",
                format!("normalized distance must be in [0,255], got {d}"),
            ));
        }
        Ok(self.lut[d.round() as usize])
    }

    /// Color for an *undefined* distance: the background (the item is not
    /// colorable, §4.4).
    pub fn color_for_undefined(&self) -> Rgb {
        BACKGROUND
    }

    /// The full LUT (for legend strips and benchmarking).
    pub fn lut(&self) -> &[Rgb] {
        &self.lut
    }
}

impl Default for Colormap {
    fn default() -> Self {
        Colormap::new(ColormapKind::VisDb)
    }
}

/// The paper's path. Keyframes in (t, hue°, saturation, value):
/// yellow → green → blue → red → almost black, saturation ~constant,
/// value monotonically decreasing.
fn visdb_path(t: f64) -> Rgb {
    const KEYS: [(f64, f64, f64, f64); 5] = [
        (0.00, 60.0, 0.88, 1.00),  // yellow
        (0.25, 120.0, 0.88, 0.85), // green
        (0.50, 240.0, 0.88, 0.70), // blue
        (0.75, 360.0, 0.88, 0.48), // red (360 == 0 but keeps hue monotone)
        (1.00, 370.0, 0.88, 0.07), // almost black, slightly past red
    ];
    let t = t.clamp(0.0, 1.0);
    let mut k = 0;
    while k + 2 < KEYS.len() && t > KEYS[k + 1].0 {
        k += 1;
    }
    let (t0, h0, s0, v0) = KEYS[k];
    let (t1, h1, s1, v1) = KEYS[k + 1];
    let u = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
    hsv_to_rgb(h0 + u * (h1 - h0), s0 + u * (s1 - s0), v0 + u * (v1 - v0))
}

/// White → yellow → red → black heat path.
fn heat_path(t: f64) -> Rgb {
    const KEYS: [(f64, f64, f64, f64); 4] = [
        (0.00, 60.0, 0.06, 0.99),
        (0.33, 60.0, 1.0, 1.00),
        (0.66, 0.0, 1.0, 0.90),
        (1.00, 0.0, 1.0, 0.05),
    ];
    let t = t.clamp(0.0, 1.0);
    let mut k = 0;
    while k + 2 < KEYS.len() && t > KEYS[k + 1].0 {
        k += 1;
    }
    let (t0, h0, s0, v0) = KEYS[k];
    let (t1, h1, s1, v1) = KEYS[k + 1];
    let u = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
    hsv_to_rgb(h0 + u * (h1 - h0), s0 + u * (s1 - s0), v0 + u * (v1 - v0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_answers_are_yellow() {
        let m = Colormap::default();
        let c = m.color_for_distance(0.0).unwrap();
        // yellow: high red+green, low blue
        assert!(c.r > 200 && c.g > 200 && c.b < 80, "{c:?}");
    }

    #[test]
    fn far_answers_are_almost_black() {
        let m = Colormap::default();
        let c = m.color_for_distance(255.0).unwrap();
        assert!(c.luma() < 40.0, "{c:?}");
    }

    #[test]
    fn midpoints_hit_the_named_hues() {
        let m = Colormap::default();
        let green = m.sample(0.25);
        assert!(green.g > green.r && green.g > green.b, "{green:?}");
        let blue = m.sample(0.5);
        assert!(blue.b > blue.r && blue.b > blue.g, "{blue:?}");
        let red = m.sample(0.75);
        assert!(red.r > red.g && red.r > red.b, "{red:?}");
    }

    #[test]
    fn hsv_value_is_monotone_decreasing() {
        // the knob the paper's map actually controls: intensity falls with
        // distance (perceptual L* cannot be strictly monotone through the
        // intrinsically dark blue hue band)
        let m = Colormap::default();
        let mut prev = f64::INFINITY;
        for i in 0..=40 {
            let c = m.sample(i as f64 / 40.0);
            let v = f64::from(c.r.max(c.g).max(c.b)) / 255.0;
            assert!(v <= prev + 1e-9, "value bump at t={}", i as f64 / 40.0);
            prev = v;
        }
    }

    #[test]
    fn lightness_trend_is_downward() {
        let m = Colormap::default();
        let l = |t: f64| crate::space::rgb_to_lab(m.sample(t)).l;
        assert!(l(0.0) > l(0.4));
        assert!(l(0.4) > l(1.0));
        assert!(l(0.0) > 90.0); // yellow is bright
        assert!(l(1.0) < 15.0); // almost black
    }

    #[test]
    fn out_of_range_distance_is_rejected() {
        let m = Colormap::default();
        assert!(m.color_for_distance(-1.0).is_err());
        assert!(m.color_for_distance(256.0).is_err());
        assert!(m.color_for_distance(f64::NAN).is_err());
    }

    #[test]
    fn grayscale_endpoints() {
        let m = Colormap::new(ColormapKind::Grayscale);
        assert_eq!(m.color_for_distance(0.0).unwrap(), Rgb::new(255, 255, 255));
        assert_eq!(m.color_for_distance(255.0).unwrap(), Rgb::new(0, 0, 0));
    }

    #[test]
    fn lut_matches_continuous_samples() {
        let m = Colormap::default();
        for d in [0.0, 64.0, 128.0, 255.0] {
            assert_eq!(m.color_for_distance(d).unwrap(), m.sample(d / 255.0));
        }
    }

    #[test]
    fn highlight_color_is_not_in_any_lut() {
        for kind in [ColormapKind::VisDb, ColormapKind::Heat] {
            let m = Colormap::new(kind);
            assert!(!m.lut().contains(&HIGHLIGHT), "{kind:?}");
        }
    }
}
