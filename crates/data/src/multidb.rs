//! The multi-database correspondence workload (§4.5).
//!
//! "in multi-database systems ... it is often a problem to find
//! corresponding data items in multiple independent databases. If a
//! distance function for the two attributes to be joined can be defined,
//! our system will help the user to identify closely related data items."
//!
//! We generate two customer tables whose names refer to the same
//! entities but were entered independently: the second copy carries
//! typos (edit distance 1–2), so equality joins fail while approximate
//! string joins recover the correspondence.

use rand::Rng;

use visdb_query::ast::AttrRef;
use visdb_query::connection::{ConnectionDef, ConnectionKind, ConnectionRegistry};
use visdb_storage::{Database, Table};
use visdb_types::{Column, DataType, Schema, Value};

use crate::distributions::rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct MultiDbConfig {
    /// Number of corresponding customer pairs.
    pub customers: usize,
    /// Extra unmatched rows in each table.
    pub unmatched_per_side: usize,
    /// Typos applied to each matched name in table B (1..=2 sensible).
    pub typos: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiDbConfig {
    fn default() -> Self {
        MultiDbConfig {
            customers: 60,
            unmatched_per_side: 20,
            typos: 1,
            seed: 99,
        }
    }
}

/// The generated workload plus the true correspondence.
#[derive(Debug, Clone)]
pub struct MultiDbData {
    /// Catalog holding `CustomersA` and `CustomersB`.
    pub db: Database,
    /// Declared approximate-join connection on the name columns.
    pub registry: ConnectionRegistry,
    /// True pairs `(row in A, row in B)`.
    pub pairs: Vec<(usize, usize)>,
}

const FIRST: &[&str] = &[
    "anna", "bernd", "clara", "dieter", "elena", "frank", "greta", "heinz", "ines", "jakob",
    "karin", "lars", "marta", "nils", "olga", "paul", "rosa", "stefan", "tina", "ulrich",
];
const LAST: &[&str] = &[
    "keim", "kriegel", "seidl", "maier", "huber", "schmid", "weber", "wagner", "becker", "wolf",
    "schulz", "koch", "bauer", "richter", "klein", "neumann", "schwarz", "zimmer", "kraus", "lang",
];

fn customers_schema() -> Schema {
    Schema::new(vec![
        Column::new("CustomerId", DataType::Int),
        Column::new("Name", DataType::Str),
        Column::new("Balance", DataType::Float),
    ])
}

fn make_name<R: Rng>(r: &mut R) -> String {
    format!(
        "{} {}",
        FIRST[r.gen_range(0..FIRST.len())],
        LAST[r.gen_range(0..LAST.len())]
    )
}

/// Apply `n` random single-character substitutions/insertions/deletions.
fn corrupt<R: Rng>(r: &mut R, name: &str, n: usize) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    for _ in 0..n {
        if chars.is_empty() {
            break;
        }
        let pos = r.gen_range(0..chars.len());
        match r.gen_range(0..3) {
            0 => chars[pos] = (b'a' + r.gen_range(0..26u8)) as char, // substitute
            1 => chars.insert(pos, (b'a' + r.gen_range(0..26u8)) as char), // insert
            _ => {
                chars.remove(pos); // delete
            }
        }
    }
    chars.into_iter().collect()
}

/// Generate the workload.
pub fn generate_multidb(cfg: &MultiDbConfig) -> MultiDbData {
    let mut r = rng(cfg.seed);
    let mut a = Table::new("CustomersA", customers_schema());
    let mut b = Table::new("CustomersB", customers_schema());
    let mut pairs = Vec::with_capacity(cfg.customers);

    for i in 0..cfg.customers {
        let name = make_name(&mut r);
        let corrupted = loop {
            let c = corrupt(&mut r, &name, cfg.typos);
            if c != name {
                break c;
            }
        };
        a.push_row(vec![
            Value::Int(i as i64),
            Value::Str(name),
            Value::Float(r.gen_range(-500.0..5000.0)),
        ])
        .expect("schema-conforming row");
        b.push_row(vec![
            Value::Int(1000 + i as i64),
            Value::Str(corrupted),
            Value::Float(r.gen_range(-500.0..5000.0)),
        ])
        .expect("schema-conforming row");
        pairs.push((i, i));
    }
    for j in 0..cfg.unmatched_per_side {
        a.push_row(vec![
            Value::Int((cfg.customers + j) as i64),
            Value::Str(format!("unmatched-a-{j:03}")),
            Value::Float(0.0),
        ])
        .expect("schema-conforming row");
        b.push_row(vec![
            Value::Int((2000 + j) as i64),
            Value::Str(format!("unmatched-b-{j:03}")),
            Value::Float(0.0),
        ])
        .expect("schema-conforming row");
    }

    let mut db = Database::new("multidb");
    db.add_table(a);
    db.add_table(b);

    let mut registry = ConnectionRegistry::new();
    registry.declare(ConnectionDef {
        name: "same-customer".into(),
        left_table: "CustomersA".into(),
        right_table: "CustomersB".into(),
        kind: ConnectionKind::Equi {
            left: AttrRef::qualified("CustomersA", "Name"),
            right: AttrRef::qualified("CustomersB", "Name"),
        },
    });

    MultiDbData {
        db,
        registry,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_pairs() {
        let cfg = MultiDbConfig::default();
        let d = generate_multidb(&cfg);
        let a = d.db.table("CustomersA").unwrap();
        let b = d.db.table("CustomersB").unwrap();
        assert_eq!(a.len(), cfg.customers + cfg.unmatched_per_side);
        assert_eq!(b.len(), cfg.customers + cfg.unmatched_per_side);
        assert_eq!(d.pairs.len(), cfg.customers);
    }

    #[test]
    fn matched_names_differ_but_are_close() {
        let d = generate_multidb(&MultiDbConfig::default());
        let a = d.db.table("CustomersA").unwrap();
        let b = d.db.table("CustomersB").unwrap();
        let an = a.column_by_name("Name").unwrap();
        let bn = b.column_by_name("Name").unwrap();
        for &(i, j) in d.pairs.iter().take(20) {
            let x = an.get_str(i).unwrap();
            let y = bn.get_str(j).unwrap();
            assert_ne!(x, y, "pair ({i},{j}) should differ");
            // 1 typo -> edit distance at most 2 (insert counts once)
            let dist = levenshtein(x, y);
            assert!(dist <= 2, "'{x}' vs '{y}' distance {dist}");
        }
    }

    #[test]
    fn determinism() {
        let a = generate_multidb(&MultiDbConfig::default());
        let b = generate_multidb(&MultiDbConfig::default());
        assert_eq!(
            a.db.table("CustomersA").unwrap().row(3).unwrap(),
            b.db.table("CustomersA").unwrap().row(3).unwrap()
        );
    }

    // local copy to avoid a dev-dependency on visdb-distance
    fn levenshtein(a: &str, b: &str) -> usize {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=bc.len()).collect();
        let mut cur = vec![0usize; bc.len() + 1];
        for (i, &ca) in ac.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &cb) in bc.iter().enumerate() {
                let sub = prev[j] + usize::from(ca != cb);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[bc.len()]
    }
}
