//! Seedable samplers used by the workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG from a seed — every generator in this crate is
/// reproducible given its config.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard normal sample via Box–Muller (rand's distribution crate is
/// not among the sanctioned dependencies).
pub fn normal<R: Rng>(r: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = r.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Sample from a two-component Gaussian mixture — the fig 2 density
/// shapes (§5.1): `(weight1, mean1, sd1)` vs `(mean2, sd2)`.
pub fn mixture<R: Rng>(r: &mut R, w1: f64, (m1, s1): (f64, f64), (m2, s2): (f64, f64)) -> f64 {
    if r.gen_range(0.0..1.0) < w1 {
        normal(r, m1, s1)
    } else {
        normal(r, m2, s2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..10 {
            assert_eq!(normal(&mut a, 0.0, 1.0), normal(&mut b, 0.0, 1.0));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = rng(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd={}", var.sqrt());
    }

    #[test]
    fn mixture_is_bimodal() {
        let mut r = rng(9);
        let n = 10_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| mixture(&mut r, 0.5, (0.0, 0.5), (100.0, 0.5)))
            .collect();
        let low = samples.iter().filter(|x| **x < 50.0).count();
        assert!((4000..6000).contains(&low), "low={low}");
    }
}
