//! # visdb-data
//!
//! Synthetic workload generators standing in for the paper's data sets
//! (see DESIGN.md §2 for the substitution rationale).
//!
//! * [`environmental`] — the running example of §3/§4: hourly weather and
//!   air-pollution measurement series with a *planted* 2-hour time-lagged
//!   ozone response, planted single-item hot spots, per-station location
//!   jitter and a measurement-interval offset so that exact equality
//!   joins fail while approximate joins succeed (§4.4).
//! * [`cad`] — the CAD similarity-retrieval application of §4.5: parts
//!   described by 27 parameters, generated as clusters of similar parts
//!   plus near-miss singletons.
//! * [`geographic`] — points-of-interest tables with ground-truth
//!   station/site pairings at known distances, for the spatial
//!   (`with-distance(m)`) joins.
//! * [`multidb`] — the multi-database correspondence application of
//!   §4.5: two customer tables whose join keys are misspelled variants.
//! * [`distributions`] — seedable samplers (normal via Box–Muller,
//!   mixtures) shared by the generators and the figure-2 bench.

pub mod cad;
pub mod distributions;
pub mod environmental;
pub mod geographic;
pub mod multidb;

pub use cad::{generate_cad, CadConfig, CadData};
pub use environmental::{generate_environmental, EnvConfig, EnvData};
pub use geographic::{generate_geographic, GeoConfig, GeoData};
pub use multidb::{generate_multidb, MultiDbConfig, MultiDbData};
