//! The environmental measurement workload (§3, §4.1).
//!
//! Schema matches fig 3:
//! * `Weather(DateTime, Location, Temperature, Humidity, Precipitation,
//!   Solar-Radiation)`
//! * `Air-Pollution(DateTime, Location, CO, SO2, NO2, Ozone)`
//!
//! Planted structure (returned as [`GroundTruth`] so experiments can
//! score recovery):
//! * temperature ↔ solar radiation positively correlated (the "obvious"
//!   correlation of §3),
//! * **ozone responds to temperature and solar radiation with a 2-hour
//!   lag** — the correlation the paper's example query hunts for,
//! * a configurable number of single-item ozone **hot spots**,
//! * pollution stations are offset from the weather stations by a small
//!   distance and sample on a shifted clock, so *exact* joins on time or
//!   location return nothing while approximate joins succeed (§4.4).

use rand::Rng;

use visdb_query::ast::AttrRef;
use visdb_query::connection::{ConnectionDef, ConnectionKind, ConnectionRegistry};
use visdb_storage::{Database, Table};
use visdb_types::{Column, DataType, Location, Schema, Value};

use crate::distributions::{normal, rng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Hours of measurements per station.
    pub hours: usize,
    /// Number of measurement stations.
    pub stations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Ozone response lag in hours (the paper's example uses 2).
    pub ozone_lag_hours: usize,
    /// Number of planted single-item ozone hot spots.
    pub hot_spots: usize,
    /// Clock offset of pollution measurements relative to weather, in
    /// seconds (breaks exact time-equality joins; 0 disables).
    pub pollution_clock_offset: i64,
    /// Distance between each weather station and its paired pollution
    /// station in meters (breaks exact location-equality joins; 0
    /// disables).
    pub station_offset_m: f64,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            hours: 24 * 30,
            stations: 2,
            seed: 4242,
            ozone_lag_hours: 2,
            hot_spots: 3,
            pollution_clock_offset: 600,
            station_offset_m: 150.0,
        }
    }
}

/// What the generator planted (for scoring experiments C2/C3).
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Row indices (into `Air-Pollution`) of the planted hot spots.
    pub hot_spot_rows: Vec<usize>,
    /// The planted lag in seconds.
    pub ozone_lag_seconds: i64,
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct EnvData {
    /// Catalog holding `Weather` and `Air-Pollution`.
    pub db: Database,
    /// Declared connections (fig 3's Connections window).
    pub registry: ConnectionRegistry,
    /// Planted structure.
    pub truth: GroundTruth,
}

fn weather_schema() -> Schema {
    Schema::new(vec![
        Column::new("DateTime", DataType::Timestamp),
        Column::new("Location", DataType::Location),
        Column::new("Temperature", DataType::Float).with_unit("°C"),
        Column::new("Humidity", DataType::Float).with_unit("%"),
        Column::new("Precipitation", DataType::Float).with_unit("mm"),
        Column::new("Solar-Radiation", DataType::Float).with_unit("watt/m2"),
    ])
}

fn pollution_schema() -> Schema {
    Schema::new(vec![
        Column::new("DateTime", DataType::Timestamp),
        Column::new("Location", DataType::Location),
        Column::new("CO", DataType::Float).with_unit("mg/m3"),
        Column::new("SO2", DataType::Float).with_unit("µg/m3"),
        Column::new("NO2", DataType::Float).with_unit("µg/m3"),
        Column::new("Ozone", DataType::Float).with_unit("µg/m3"),
    ])
}

/// ~meters → degrees latitude.
fn meters_to_deg_lat(m: f64) -> f64 {
    m / 111_320.0
}

/// Generate the workload.
pub fn generate_environmental(cfg: &EnvConfig) -> EnvData {
    let mut r = rng(cfg.seed);
    let mut weather = Table::new("Weather", weather_schema());
    let mut pollution = Table::new("Air-Pollution", pollution_schema());
    let lag = cfg.ozone_lag_hours;

    let base_stations: Vec<Location> = (0..cfg.stations)
        .map(|s| Location::new(48.0 + s as f64 * 0.5, 11.0 + s as f64 * 0.3))
        .collect();

    let mut truth = GroundTruth {
        ozone_lag_seconds: (lag * 3600) as i64,
        ..Default::default()
    };

    for (s, &wloc) in base_stations.iter().enumerate() {
        // the paired pollution station sits `station_offset_m` north
        let ploc = Location::new(wloc.lat + meters_to_deg_lat(cfg.station_offset_m), wloc.lon);
        // per-station temperature/solar series, kept so ozone can look
        // back `lag` hours
        let mut temps = Vec::with_capacity(cfg.hours);
        let mut solars = Vec::with_capacity(cfg.hours);
        for h in 0..cfg.hours {
            let t = (h * 3600) as i64;
            let hour_of_day = (h % 24) as f64;
            let day = (h / 24) as f64;
            // diurnal cycle peaking at 14:00 + weak seasonal cycle + noise
            let diurnal = ((hour_of_day - 14.0) / 24.0 * std::f64::consts::TAU).cos();
            let seasonal = (day / 365.0 * std::f64::consts::TAU).sin() * 8.0;
            let temp = 12.0 + 8.0 * diurnal + seasonal + normal(&mut r, 0.0, 1.5);
            // solar radiation: daylight curve, correlated with temperature
            let sun = (((hour_of_day - 6.0) / 12.0) * std::f64::consts::PI).sin();
            let solar = if (6.0..=18.0).contains(&hour_of_day) {
                (sun * 750.0 + (temp - 12.0) * 10.0 + normal(&mut r, 0.0, 40.0)).max(0.0)
            } else {
                0.0
            };
            let humidity = (95.0 - 2.2 * temp + normal(&mut r, 0.0, 5.0)).clamp(5.0, 100.0);
            let precipitation = if r.gen_range(0.0..1.0) < 0.08 {
                r.gen_range(0.1..12.0)
            } else {
                0.0
            };
            weather
                .push_row(vec![
                    Value::Timestamp(t),
                    Value::Location(wloc),
                    Value::Float(temp),
                    Value::Float(humidity),
                    Value::Float(precipitation),
                    Value::Float(solar),
                ])
                .expect("schema-conforming row");
            temps.push(temp);
            solars.push(solar);
        }
        for h in 0..cfg.hours {
            let t = (h * 3600) as i64 + cfg.pollution_clock_offset;
            // ozone responds to temperature & radiation `lag` hours ago
            let (t_past, s_past) = if h >= lag {
                (temps[h - lag], solars[h - lag])
            } else {
                (temps[0], solars[0])
            };
            let ozone =
                (20.0 + 2.2 * (t_past - 10.0).max(0.0) + 0.06 * s_past + normal(&mut r, 0.0, 6.0))
                    .max(0.0);
            let co = (0.4 + 0.02 * (25.0 - t_past).max(0.0) + normal(&mut r, 0.0, 0.1)).max(0.0);
            let so2 = (8.0 + normal(&mut r, 0.0, 2.0)).max(0.0);
            let no2 = (25.0 + 0.01 * s_past + normal(&mut r, 0.0, 5.0)).max(0.0);
            pollution
                .push_row(vec![
                    Value::Timestamp(t),
                    Value::Location(ploc),
                    Value::Float(co),
                    Value::Float(so2),
                    Value::Float(no2),
                    Value::Float(ozone),
                ])
                .expect("schema-conforming row");
        }
        // plant hot spots for station 0 only (deterministic positions)
        if s == 0 {
            for k in 0..cfg.hot_spots {
                let h = (cfg.hours / (cfg.hot_spots + 1)) * (k + 1);
                truth.hot_spot_rows.push(h);
            }
        }
    }

    // overwrite the planted rows with extreme ozone (single exceptional
    // data items, §2.2 "hot spots")
    if !truth.hot_spot_rows.is_empty() {
        let rows: Vec<usize> = (0..pollution.len()).collect();
        let mut replacement = Table::new("Air-Pollution", pollution_schema());
        for &i in &rows {
            let mut row = pollution.row(i).expect("in range");
            if truth.hot_spot_rows.contains(&i) {
                row[5] = Value::Float(480.0 + (i % 7) as f64); // extreme ozone
            }
            replacement.push_row(row).expect("same schema");
        }
        pollution = replacement;
    }

    let mut db = Database::new("environment");
    db.add_table(weather);
    db.add_table(pollution);

    let mut registry = ConnectionRegistry::new();
    registry.declare(ConnectionDef {
        name: "with-time-diff".into(),
        left_table: "Air-Pollution".into(),
        right_table: "Weather".into(),
        kind: ConnectionKind::TimeDiff {
            left: AttrRef::qualified("Air-Pollution", "DateTime"),
            right: AttrRef::qualified("Weather", "DateTime"),
        },
    });
    registry.declare(ConnectionDef {
        name: "at-same-time".into(),
        left_table: "Air-Pollution".into(),
        right_table: "Weather".into(),
        kind: ConnectionKind::Equi {
            left: AttrRef::qualified("Air-Pollution", "DateTime"),
            right: AttrRef::qualified("Weather", "DateTime"),
        },
    });
    registry.declare(ConnectionDef {
        name: "at-same-location".into(),
        left_table: "Air-Pollution".into(),
        right_table: "Weather".into(),
        kind: ConnectionKind::SpatialWithin {
            left: AttrRef::qualified("Air-Pollution", "Location"),
            right: AttrRef::qualified("Weather", "Location"),
        },
    });

    EnvData {
        db,
        registry,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EnvData {
        generate_environmental(&EnvConfig {
            hours: 24 * 7,
            stations: 2,
            seed: 1,
            ..Default::default()
        })
    }

    #[test]
    fn shapes_and_determinism() {
        let d1 = small();
        let d2 = small();
        let w = d1.db.table("Weather").unwrap();
        let p = d1.db.table("Air-Pollution").unwrap();
        assert_eq!(w.len(), 24 * 7 * 2);
        assert_eq!(p.len(), 24 * 7 * 2);
        assert_eq!(
            d2.db.table("Weather").unwrap().row(17).unwrap(),
            w.row(17).unwrap()
        );
        assert_eq!(d1.registry.len(), 3);
    }

    #[test]
    fn hot_spots_are_extreme() {
        let d = small();
        let p = d.db.table("Air-Pollution").unwrap();
        let ozone = p.column_by_name("Ozone").unwrap();
        // collect non-hotspot max
        let mut regular_max = f64::NEG_INFINITY;
        for i in 0..p.len() {
            if !d.truth.hot_spot_rows.contains(&i) {
                regular_max = regular_max.max(ozone.get_f64(i).unwrap());
            }
        }
        for &i in &d.truth.hot_spot_rows {
            let v = ozone.get_f64(i).unwrap();
            assert!(
                v > regular_max + 50.0,
                "hot spot {i} = {v}, regular max {regular_max}"
            );
        }
    }

    #[test]
    fn ozone_lag_correlation_is_planted() {
        let d = generate_environmental(&EnvConfig {
            hours: 24 * 60,
            stations: 1,
            hot_spots: 0,
            seed: 3,
            ..Default::default()
        });
        let w = d.db.table("Weather").unwrap();
        let p = d.db.table("Air-Pollution").unwrap();
        let temp = w.column_by_name("Temperature").unwrap();
        let ozone = p.column_by_name("Ozone").unwrap();
        let n = w.len();
        let corr_at = |lag: usize| {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for h in lag..n {
                xs.push(temp.get_f64(h - lag).unwrap());
                ys.push(ozone.get_f64(h).unwrap());
            }
            let mx = xs.iter().sum::<f64>() / xs.len() as f64;
            let my = ys.iter().sum::<f64>() / ys.len() as f64;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let sx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>().sqrt();
            let sy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum::<f64>().sqrt();
            cov / (sx * sy)
        };
        let lag2 = corr_at(2);
        let lag12 = corr_at(12);
        assert!(lag2 > 0.8, "lag-2 correlation {lag2}");
        assert!(
            lag2 > lag12 + 0.1,
            "lag-2 {lag2} should beat lag-12 {lag12}"
        );
    }

    #[test]
    fn exact_joins_fail_but_approximate_would_succeed() {
        let d = small();
        let w = d.db.table("Weather").unwrap();
        let p = d.db.table("Air-Pollution").unwrap();
        let wt = w.column_by_name("DateTime").unwrap();
        let pt = p.column_by_name("DateTime").unwrap();
        // no pollution timestamp equals any weather timestamp (offset 600s)
        for i in 0..p.len().min(100) {
            let t = pt.get_f64(i).unwrap();
            for j in 0..w.len().min(100) {
                assert_ne!(t, wt.get_f64(j).unwrap());
            }
        }
        // but every pollution timestamp is within 600s of some weather one
        let t0 = pt.get_f64(0).unwrap();
        let close = (0..w.len()).any(|j| (wt.get_f64(j).unwrap() - t0).abs() <= 600.0);
        assert!(close);
    }

    #[test]
    fn humidity_anticorrelates_with_temperature() {
        let d = small();
        let w = d.db.table("Weather").unwrap();
        let temp = w.column_by_name("Temperature").unwrap();
        let hum = w.column_by_name("Humidity").unwrap();
        let n = w.len();
        let mx = (0..n).map(|i| temp.get_f64(i).unwrap()).sum::<f64>() / n as f64;
        let my = (0..n).map(|i| hum.get_f64(i).unwrap()).sum::<f64>() / n as f64;
        let cov: f64 = (0..n)
            .map(|i| (temp.get_f64(i).unwrap() - mx) * (hum.get_f64(i).unwrap() - my))
            .sum();
        assert!(cov < 0.0);
    }
}
