//! The CAD similarity-retrieval workload (§4.5).
//!
//! "In a concrete application in mechanical engineering we had 27
//! parameters describing the parts." Parts are generated as clusters of
//! similar parts (prototype + small perturbations) plus *near-miss*
//! parts that match a prototype in all but one parameter — exactly the
//! case the paper argues fixed-allowance queries lose: "the user might
//! miss a part that exactly fits in all except one parameter".

use rand::Rng;

use visdb_storage::{Database, Table};
use visdb_types::{Column, DataType, Schema, Value};

use crate::distributions::{normal, rng};

/// Number of describing parameters (as in the paper's application).
pub const NUM_PARAMS: usize = 27;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CadConfig {
    /// Number of part clusters (families of similar parts).
    pub clusters: usize,
    /// Parts per cluster.
    pub parts_per_cluster: usize,
    /// Near-miss parts per cluster (match the prototype in all but one
    /// parameter).
    pub near_misses_per_cluster: usize,
    /// Unrelated random parts.
    pub random_parts: usize,
    /// Within-cluster parameter jitter (standard deviation).
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CadConfig {
    fn default() -> Self {
        CadConfig {
            clusters: 5,
            parts_per_cluster: 40,
            near_misses_per_cluster: 2,
            random_parts: 300,
            jitter: 0.5,
            seed: 77,
        }
    }
}

/// The generated workload plus ground truth.
#[derive(Debug, Clone)]
pub struct CadData {
    /// Catalog holding the `Parts` table.
    pub db: Database,
    /// Cluster prototypes (parameter vectors), index = cluster id.
    pub prototypes: Vec<Vec<f64>>,
    /// Cluster label per row (`None` = random part).
    pub labels: Vec<Option<usize>>,
    /// Rows that are near-misses: `(row, cluster, deviating parameter)`.
    pub near_misses: Vec<(usize, usize, usize)>,
}

fn parts_schema() -> Schema {
    let mut cols = vec![Column::new("PartId", DataType::Int)];
    for p in 0..NUM_PARAMS {
        cols.push(Column::new(format!("p{p:02}"), DataType::Float));
    }
    Schema::new(cols)
}

/// Generate the workload.
pub fn generate_cad(cfg: &CadConfig) -> CadData {
    let mut r = rng(cfg.seed);
    let prototypes: Vec<Vec<f64>> = (0..cfg.clusters)
        .map(|_| (0..NUM_PARAMS).map(|_| r.gen_range(10.0..100.0)).collect())
        .collect();

    let mut table = Table::new("Parts", parts_schema());
    let mut labels = Vec::new();
    let mut near_misses = Vec::new();
    let mut next_id = 0i64;
    let push_part = |table: &mut Table, params: &[f64], id: &mut i64| {
        let mut row = vec![Value::Int(*id)];
        row.extend(params.iter().map(|&p| Value::Float(p)));
        table.push_row(row).expect("schema-conforming row");
        *id += 1;
    };

    for (c, proto) in prototypes.iter().enumerate() {
        for _ in 0..cfg.parts_per_cluster {
            let params: Vec<f64> = proto
                .iter()
                .map(|&p| p + normal(&mut r, 0.0, cfg.jitter))
                .collect();
            push_part(&mut table, &params, &mut next_id);
            labels.push(Some(c));
        }
        for _ in 0..cfg.near_misses_per_cluster {
            let mut params: Vec<f64> = proto
                .iter()
                .map(|&p| p + normal(&mut r, 0.0, cfg.jitter * 0.2))
                .collect();
            let dev = r.gen_range(0..NUM_PARAMS);
            // deviate decisively in exactly one parameter
            params[dev] += if r.gen_range(0.0..1.0) < 0.5 {
                25.0
            } else {
                -25.0
            };
            let row_idx = labels.len();
            push_part(&mut table, &params, &mut next_id);
            labels.push(Some(c));
            near_misses.push((row_idx, c, dev));
        }
    }
    for _ in 0..cfg.random_parts {
        let params: Vec<f64> = (0..NUM_PARAMS).map(|_| r.gen_range(10.0..100.0)).collect();
        push_part(&mut table, &params, &mut next_id);
        labels.push(None);
    }

    let mut db = Database::new("cad");
    db.add_table(table);
    CadData {
        db,
        prototypes,
        labels,
        near_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let cfg = CadConfig::default();
        let d = generate_cad(&cfg);
        let t = d.db.table("Parts").unwrap();
        let expected =
            cfg.clusters * (cfg.parts_per_cluster + cfg.near_misses_per_cluster) + cfg.random_parts;
        assert_eq!(t.len(), expected);
        assert_eq!(t.schema().len(), NUM_PARAMS + 1);
        assert_eq!(d.labels.len(), expected);
        assert_eq!(
            d.near_misses.len(),
            cfg.clusters * cfg.near_misses_per_cluster
        );
    }

    #[test]
    fn cluster_members_are_close_to_their_prototype() {
        let d = generate_cad(&CadConfig::default());
        let t = d.db.table("Parts").unwrap();
        for (row, label) in d.labels.iter().enumerate().take(40) {
            let Some(c) = label else { continue };
            let proto = &d.prototypes[*c];
            if d.near_misses.iter().any(|(r, _, _)| *r == row) {
                continue;
            }
            for (p, &expected) in proto.iter().enumerate() {
                let v = t.column(p + 1).unwrap().get_f64(row).unwrap();
                assert!(
                    (v - expected).abs() < 5.0,
                    "row {row} p{p}: {v} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn near_misses_deviate_in_exactly_one_parameter() {
        let d = generate_cad(&CadConfig::default());
        let t = d.db.table("Parts").unwrap();
        for &(row, cluster, dev) in &d.near_misses {
            let proto = &d.prototypes[cluster];
            let mut big_devs = 0;
            for (p, &expected) in proto.iter().enumerate() {
                let v = t.column(p + 1).unwrap().get_f64(row).unwrap();
                if (v - expected).abs() > 10.0 {
                    big_devs += 1;
                    assert_eq!(p, dev, "row {row} deviates at p{p}, expected p{dev}");
                }
            }
            assert_eq!(big_devs, 1, "row {row}");
        }
    }

    #[test]
    fn determinism() {
        let a = generate_cad(&CadConfig::default());
        let b = generate_cad(&CadConfig::default());
        assert_eq!(
            a.db.table("Parts").unwrap().row(5).unwrap(),
            b.db.table("Parts").unwrap().row(5).unwrap()
        );
    }
}
