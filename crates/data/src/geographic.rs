//! Geographic points-of-interest workload.
//!
//! The paper's fig 4/5 images come from "a large database of geographical
//! information" (§4.5), and its spatial connections (`at-same-location`,
//! `with-distance(m)`) need location-bearing relations. This generator
//! produces two POI tables — measurement `Stations` and nearby `Sites` of
//! interest — with ground-truth pairings at known distances, exercising
//! the `SpatialWithin` join and the geo distance functions.

use rand::Rng;

use visdb_query::ast::AttrRef;
use visdb_query::connection::{ConnectionDef, ConnectionKind, ConnectionRegistry};
use visdb_storage::{Database, Table};
use visdb_types::{Column, DataType, Location, Schema, TypeClass, Value};

use crate::distributions::rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// Number of stations.
    pub stations: usize,
    /// Sites paired with a station (placed at a known offset).
    pub paired_sites: usize,
    /// Unpaired sites scattered uniformly.
    pub scattered_sites: usize,
    /// Distance of each paired site from its station, in meters.
    pub pair_distance_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            stations: 25,
            paired_sites: 25,
            scattered_sites: 100,
            pair_distance_m: 400.0,
            seed: 1234,
        }
    }
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct GeoData {
    /// Catalog with `Stations` and `Sites`.
    pub db: Database,
    /// Declared spatial connection (`near`).
    pub registry: ConnectionRegistry,
    /// True pairs `(station row, site row)` at `pair_distance_m`.
    pub pairs: Vec<(usize, usize)>,
}

fn stations_schema() -> Schema {
    Schema::new(vec![
        Column::new("StationId", DataType::Int),
        Column::new("Location", DataType::Location),
        Column::new("Elevation", DataType::Float).with_unit("m"),
    ])
}

fn sites_schema() -> Schema {
    Schema::new(vec![
        Column::new("SiteId", DataType::Int),
        Column::new("Location", DataType::Location),
        Column::new("Kind", DataType::Str).with_class(TypeClass::Nominal),
    ])
}

const KINDS: &[&str] = &["factory", "park", "school", "hospital", "landfill"];

/// Generate the workload. Stations sit on a jittered grid around Munich;
/// each paired site is placed `pair_distance_m` due east of its station.
pub fn generate_geographic(cfg: &GeoConfig) -> GeoData {
    let mut r = rng(cfg.seed);
    let mut stations = Table::new("Stations", stations_schema());
    let mut sites = Table::new("Sites", sites_schema());
    let mut pairs = Vec::new();

    let side = (cfg.stations as f64).sqrt().ceil() as usize;
    let mut station_locs = Vec::with_capacity(cfg.stations);
    for i in 0..cfg.stations {
        let lat = 48.0 + (i / side) as f64 * 0.05 + r.gen_range(-0.005..0.005);
        let lon = 11.3 + (i % side) as f64 * 0.05 + r.gen_range(-0.005..0.005);
        let loc = Location::new(lat, lon);
        stations
            .push_row(vec![
                Value::Int(i as i64),
                Value::Location(loc),
                Value::Float(r.gen_range(450.0..700.0)),
            ])
            .expect("schema-conforming row");
        station_locs.push(loc);
    }
    // meters east -> degrees longitude at this latitude
    let m_to_deg_lon = |lat: f64, m: f64| m / (111_320.0 * lat.to_radians().cos());
    for (k, &sloc) in station_locs.iter().take(cfg.paired_sites).enumerate() {
        let loc = Location::new(
            sloc.lat,
            sloc.lon + m_to_deg_lon(sloc.lat, cfg.pair_distance_m),
        );
        let site_row = sites.len();
        sites
            .push_row(vec![
                Value::Int(1000 + k as i64),
                Value::Location(loc),
                Value::Str(KINDS[k % KINDS.len()].to_string()),
            ])
            .expect("schema-conforming row");
        pairs.push((k, site_row));
    }
    for j in 0..cfg.scattered_sites {
        let loc = Location::new(r.gen_range(47.5..48.8), r.gen_range(10.8..12.2));
        sites
            .push_row(vec![
                Value::Int(2000 + j as i64),
                Value::Location(loc),
                Value::Str(KINDS[j % KINDS.len()].to_string()),
            ])
            .expect("schema-conforming row");
    }

    let mut db = Database::new("geo");
    db.add_table(stations);
    db.add_table(sites);

    let mut registry = ConnectionRegistry::new();
    registry.declare(ConnectionDef {
        name: "near".into(),
        left_table: "Stations".into(),
        right_table: "Sites".into(),
        kind: ConnectionKind::SpatialWithin {
            left: AttrRef::qualified("Stations", "Location"),
            right: AttrRef::qualified("Sites", "Location"),
        },
    });

    GeoData {
        db,
        registry,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_distance::geo::haversine_m;

    #[test]
    fn shapes_and_determinism() {
        let cfg = GeoConfig::default();
        let a = generate_geographic(&cfg);
        let b = generate_geographic(&cfg);
        assert_eq!(a.db.table("Stations").unwrap().len(), cfg.stations);
        assert_eq!(
            a.db.table("Sites").unwrap().len(),
            cfg.paired_sites + cfg.scattered_sites
        );
        assert_eq!(a.pairs.len(), cfg.paired_sites);
        assert_eq!(
            a.db.table("Sites").unwrap().row(7).unwrap(),
            b.db.table("Sites").unwrap().row(7).unwrap()
        );
        assert_eq!(a.registry.len(), 1);
    }

    #[test]
    fn paired_sites_sit_at_the_configured_distance() {
        let cfg = GeoConfig {
            pair_distance_m: 400.0,
            ..Default::default()
        };
        let d = generate_geographic(&cfg);
        let stations = d.db.table("Stations").unwrap();
        let sites = d.db.table("Sites").unwrap();
        let sl = stations.column_by_name("Location").unwrap();
        let tl = sites.column_by_name("Location").unwrap();
        for &(si, ti) in d.pairs.iter().take(10) {
            let dist = haversine_m(sl.get_location(si).unwrap(), tl.get_location(ti).unwrap());
            assert!(
                (dist - 400.0).abs() < 5.0,
                "pair ({si},{ti}) is {dist:.1} m apart"
            );
        }
    }

    #[test]
    fn all_locations_valid() {
        let d = generate_geographic(&GeoConfig::default());
        for t in ["Stations", "Sites"] {
            let table = d.db.table(t).unwrap();
            let col = table.column_by_name("Location").unwrap();
            for i in 0..table.len() {
                assert!(col.get_location(i).unwrap().is_valid());
            }
        }
    }
}
