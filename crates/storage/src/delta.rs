//! Delta generations: the bookkeeping that makes a dataset *appendable*
//! without rotating its cache generation on every ingest.
//!
//! The paper's §6 reuse principle — "retrieve only the additional
//! portion" — is applied to *data* change here: an append produces a new
//! link in a [`DeltaChain`] instead of a brand-new base generation, so
//! the serving layer can key its caches by `(base generation, chain
//! length)` and *extend* cached artifacts (sorted projections, predicate
//! windows, top-k bands) by the appended rows only. A compaction
//! threshold folds long chains back into a fresh base generation — the
//! point at which accumulated deltas stop being "the additional portion"
//! and incremental maintenance stops paying for its bookkeeping.

/// Append lineage of one dataset: the base generation it grew from plus
/// a row-count watermark per appended link.
///
/// `watermarks[0]` is the base row count; each append pushes the new
/// total, so link `i` (1-based) covers rows
/// `watermarks[i-1]..watermarks[i]`. The chain itself is O(links) tiny
/// metadata — the appended rows live in the columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaChain {
    base_gen: u64,
    watermarks: Vec<usize>,
    compactions: u64,
}

impl DeltaChain {
    /// A fresh chain: `base_rows` rows at base generation `base_gen`,
    /// no deltas yet.
    pub fn new(base_gen: u64, base_rows: usize) -> Self {
        DeltaChain {
            base_gen,
            watermarks: vec![base_rows],
            compactions: 0,
        }
    }

    /// The base generation this chain grew from.
    pub fn base_gen(&self) -> u64 {
        self.base_gen
    }

    /// Number of delta links appended since the base.
    pub fn chain_len(&self) -> usize {
        self.watermarks.len() - 1
    }

    /// Rows in the base generation.
    pub fn base_rows(&self) -> usize {
        self.watermarks[0]
    }

    /// Total rows including every delta link.
    pub fn total_rows(&self) -> usize {
        *self.watermarks.last().expect("chain has a base watermark")
    }

    /// Rows appended since the base (`total - base`).
    pub fn delta_rows(&self) -> usize {
        self.total_rows() - self.base_rows()
    }

    /// Row-count watermarks: base count first, then one running total
    /// per link.
    pub fn watermarks(&self) -> &[usize] {
        &self.watermarks
    }

    /// Times this dataset's chain has been folded back into a base.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Record an append that grew the dataset to `new_total` rows.
    pub fn push_link(&mut self, new_total: usize) {
        assert!(
            new_total >= self.total_rows(),
            "delta link must not shrink the dataset"
        );
        self.watermarks.push(new_total);
    }

    /// True once the chain holds at least `threshold` links — the cue to
    /// fold it back into a base generation.
    pub fn should_compact(&self, threshold: usize) -> bool {
        self.chain_len() >= threshold
    }

    /// Fold the chain into a fresh base generation `new_gen`: the
    /// current total becomes the new base row count and the link list
    /// resets. Cached artifacts keyed by the old `(base_gen, chain_len)`
    /// become unreachable — the caller invalidates/rebuilds them.
    pub fn compact(&mut self, new_gen: u64) {
        let total = self.total_rows();
        self.base_gen = new_gen;
        self.watermarks = vec![total];
        self.compactions += 1;
    }

    /// The generation tag that scopes cache keys: `base_gen.chain_len`.
    /// Every append (and every compaction) changes the tag, so stale
    /// keys can never alias a newer state of the data.
    pub fn tag(&self) -> String {
        format!("{}.{}", self.base_gen, self.chain_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_lifecycle() {
        let mut c = DeltaChain::new(7, 100);
        assert_eq!(
            (c.chain_len(), c.base_rows(), c.total_rows()),
            (0, 100, 100)
        );
        assert_eq!(c.tag(), "7.0");
        c.push_link(120);
        c.push_link(120); // empty appends are legal links
        c.push_link(150);
        assert_eq!(c.chain_len(), 3);
        assert_eq!(c.delta_rows(), 50);
        assert_eq!(c.watermarks(), &[100, 120, 120, 150]);
        assert_eq!(c.tag(), "7.3");
        assert!(!c.should_compact(4));
        assert!(c.should_compact(3));
        c.compact(9);
        assert_eq!((c.base_gen(), c.chain_len()), (9, 0));
        assert_eq!((c.base_rows(), c.delta_rows()), (150, 0));
        assert_eq!(c.compactions(), 1);
        assert_eq!(c.tag(), "9.0");
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn shrinking_link_panics() {
        let mut c = DeltaChain::new(1, 10);
        c.push_link(5);
    }
}
