//! The database catalog: a set of named tables.
//!
//! Mirrors the paper's query specification flow: "first the user has to
//! select the database s/he wants to work with ... the next step is to
//! select the tables to be used in the query" (§4.1).

use std::collections::BTreeMap;

use visdb_types::{Error, Result};

use crate::table::Table;

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// New, empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register (or replace) a table under its own name.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Mutable look-up.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Remove a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Table names in sorted order (deterministic for UIs and tests).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    #[test]
    fn add_lookup_drop() {
        let mut db = Database::new("env");
        let t = TableBuilder::new("Weather", vec![Column::new("t", DataType::Float)])
            .row(vec![Value::Float(1.0)])
            .unwrap()
            .build();
        db.add_table(t);
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_rows(), 1);
        assert!(db.table("Weather").is_ok());
        assert!(matches!(db.table("Nope"), Err(Error::UnknownTable(_))));
        assert!(db.drop_table("Weather").is_some());
        assert!(db.is_empty());
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new("env");
        for n in ["Zeta", "Alpha", "Mid"] {
            db.add_table(Table::new(n, visdb_types::Schema::default()));
        }
        assert_eq!(db.table_names(), vec!["Alpha", "Mid", "Zeta"]);
    }

    #[test]
    fn replace_table_overwrites() {
        let mut db = Database::new("env");
        db.add_table(Table::new("T", visdb_types::Schema::default()));
        let t2 = TableBuilder::new("T", vec![Column::new("x", DataType::Int)])
            .row(vec![Value::Int(1)])
            .unwrap()
            .build();
        db.add_table(t2);
        assert_eq!(db.table("T").unwrap().len(), 1);
    }
}
