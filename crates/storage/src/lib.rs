//! # visdb-storage
//!
//! The in-memory columnar storage substrate underneath VisDB.
//!
//! The 1994 paper ran on top of a commercial DBMS and complained (§6) that
//! "tasks such as multidimensional search and incremental changes of
//! queries ... are not adequately supported". This crate is the substrate
//! we build instead: a small but real column store with
//!
//! * typed [`column::ColumnData`] vectors with per-type validity handling,
//! * [`table::Table`] — schema + columns + row accessors,
//! * [`catalog::Database`] — a named-table catalog,
//! * [`stats::ColumnStats`] — min/max/mean/histograms feeding the slider UI
//!   model ("the minimum and maximum value of the attribute in the
//!   database are displayed", §4.3),
//! * [`csv`] — plain-text import/export (with schema inference) so
//!   example and external datasets are inspectable,
//! * [`delta::DeltaChain`] — append lineage (base generation + row-count
//!   watermark per link + compaction fold-back) behind the O(Δ)
//!   incremental maintenance of the serving layer's caches,
//! * [`partition`] — zero-copy horizontal [`Partitioning`] views slicing
//!   every column's native buffer + validity mask, the substrate for
//!   partition-parallel pipelines and (eventually) multi-box sharding.
//!
//! The relevance pipeline reads columns through [`table::Table::column`] and
//! never materialises row structs on the hot path.

pub mod catalog;
pub mod column;
pub mod csv;
pub mod delta;
pub mod partition;
pub mod stats;
pub mod table;

pub use catalog::Database;
pub use column::{ColumnData, NumericSlice, StrColumn, StrDict, Validity};
pub use delta::DeltaChain;
pub use partition::{Partition, Partitioning};
pub use stats::ColumnStats;
pub use table::{Row, Table, TableBuilder};
