//! Minimal CSV import/export.
//!
//! Good enough for the synthetic workloads and examples (no quoting of
//! embedded separators is needed there); strings containing the separator
//! are rejected at export time rather than silently corrupted.

use std::io::{BufRead, Write};

use visdb_types::{DataType, Error, Location, Result, Schema, Value};

use crate::table::Table;

/// Parse a single CSV cell according to the target type. Empty cells are
/// NULL. Locations are encoded as `lat;lon`.
pub fn parse_cell(cell: &str, dt: DataType) -> Result<Value> {
    let cell = cell.trim();
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    let bad = |m: &str| Error::parse(format!("cannot parse '{cell}' as {dt}: {m}"));
    match dt {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| bad(&e.to_string())),
        DataType::Float | DataType::Unknown => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| bad(&e.to_string())),
        DataType::Bool => match cell {
            "true" | "1" | "t" => Ok(Value::Bool(true)),
            "false" | "0" | "f" => Ok(Value::Bool(false)),
            _ => Err(bad("expected true/false")),
        },
        DataType::Str => Ok(Value::Str(cell.to_string())),
        DataType::Timestamp => cell
            .parse::<i64>()
            .map(Value::Timestamp)
            .map_err(|e| bad(&e.to_string())),
        DataType::Location => {
            let (lat, lon) = cell
                .split_once(';')
                .ok_or_else(|| bad("expected 'lat;lon'"))?;
            let lat = lat.trim().parse::<f64>().map_err(|e| bad(&e.to_string()))?;
            let lon = lon.trim().parse::<f64>().map_err(|e| bad(&e.to_string()))?;
            Ok(Value::Location(Location::new(lat, lon)))
        }
    }
}

/// Format a value as a CSV cell (inverse of [`parse_cell`]).
pub fn format_cell(v: &Value) -> Result<String> {
    Ok(match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => {
            if s.contains(',') || s.contains('\n') {
                return Err(Error::parse(format!(
                    "string '{s}' contains a separator; quoting is unsupported"
                )));
            }
            s.clone()
        }
        Value::Timestamp(t) => t.to_string(),
        Value::Location(l) => format!("{};{}", l.lat, l.lon),
    })
}

/// Read a headerless CSV body into a table with the given schema.
pub fn read_csv<R: BufRead>(name: &str, schema: Schema, reader: R) -> Result<Table> {
    let mut table = Table::new(name, schema);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != table.schema().len() {
            return Err(Error::Parse {
                position: Some(lineno + 1),
                message: format!(
                    "expected {} cells, found {}",
                    table.schema().len(),
                    cells.len()
                ),
            });
        }
        let row: Result<Vec<Value>> = cells
            .iter()
            .zip(table.schema().columns().iter().map(|c| c.data_type))
            .map(|(cell, dt)| parse_cell(cell, dt))
            .collect();
        table.push_row(row?)?;
    }
    Ok(table)
}

/// Write a table as headerless CSV.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> Result<()> {
    for i in 0..table.len() {
        let row = table.row(i)?;
        let cells: Result<Vec<String>> = row.iter().map(format_cell).collect();
        writeln!(writer, "{}", cells?.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_types::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("t", DataType::Timestamp),
            Column::new("temp", DataType::Float),
            Column::new("loc", DataType::Location),
            Column::new("tag", DataType::Str),
        ])
    }

    #[test]
    fn round_trip() {
        let csv = "0,15.5,48.1;11.6,munich\n3600,,48.2;11.7,berlin\n";
        let t = read_csv("W", schema(), csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1).unwrap()[1], Value::Null);
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), csv);
    }

    #[test]
    fn bad_cell_reports_line() {
        let csv = "0,ok?,48.1;11.6,x\n";
        let err = read_csv("W", schema(), csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("ok?"));
    }

    #[test]
    fn wrong_arity_reports_line_number() {
        let csv = "0,1.0\n";
        let err = read_csv("W", schema(), csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("at 1"));
    }

    #[test]
    fn separator_in_string_rejected_on_export() {
        assert!(format_cell(&Value::from("a,b")).is_err());
    }

    #[test]
    fn bool_cells() {
        assert_eq!(
            parse_cell("true", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(parse_cell("0", DataType::Bool).unwrap(), Value::Bool(false));
        assert!(parse_cell("yep", DataType::Bool).is_err());
    }

    #[test]
    fn empty_lines_skipped() {
        let csv = "\n0,1.0,1;2,x\n\n";
        let t = read_csv("W", schema(), csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }
}
