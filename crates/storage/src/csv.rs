//! Minimal CSV import/export.
//!
//! Good enough for the synthetic workloads and examples (no quoting of
//! embedded separators is needed there); strings containing the separator
//! are rejected at export time rather than silently corrupted.

use std::io::{BufRead, Write};

use visdb_types::{Column, DataType, Error, Location, Result, Schema, Value};

use crate::table::Table;

/// Parse a single CSV cell according to the target type. Empty cells are
/// NULL. Locations are encoded as `lat;lon`.
pub fn parse_cell(cell: &str, dt: DataType) -> Result<Value> {
    let cell = cell.trim();
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    let bad = |m: &str| Error::parse(format!("cannot parse '{cell}' as {dt}: {m}"));
    match dt {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| bad(&e.to_string())),
        DataType::Float | DataType::Unknown => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| bad(&e.to_string())),
        DataType::Bool => match cell {
            "true" | "1" | "t" => Ok(Value::Bool(true)),
            "false" | "0" | "f" => Ok(Value::Bool(false)),
            _ => Err(bad("expected true/false")),
        },
        DataType::Str => Ok(Value::Str(cell.to_string())),
        DataType::Timestamp => cell
            .parse::<i64>()
            .map(Value::Timestamp)
            .map_err(|e| bad(&e.to_string())),
        DataType::Location => {
            let (lat, lon) = cell
                .split_once(';')
                .ok_or_else(|| bad("expected 'lat;lon'"))?;
            let lat = lat.trim().parse::<f64>().map_err(|e| bad(&e.to_string()))?;
            let lon = lon.trim().parse::<f64>().map_err(|e| bad(&e.to_string()))?;
            Ok(Value::Location(Location::new(lat, lon)))
        }
    }
}

/// Format a value as a CSV cell (inverse of [`parse_cell`]).
pub fn format_cell(v: &Value) -> Result<String> {
    Ok(match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => {
            if s.contains(',') || s.contains('\n') {
                return Err(Error::parse(format!(
                    "string '{s}' contains a separator; quoting is unsupported"
                )));
            }
            s.clone()
        }
        Value::Timestamp(t) => t.to_string(),
        Value::Location(l) => format!("{};{}", l.lat, l.lon),
    })
}

/// Read a headerless CSV body into a table with the given schema.
pub fn read_csv<R: BufRead>(name: &str, schema: Schema, reader: R) -> Result<Table> {
    let mut table = Table::new(name, schema);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != table.schema().len() {
            return Err(Error::Parse {
                position: Some(lineno + 1),
                message: format!(
                    "expected {} cells, found {}",
                    table.schema().len(),
                    cells.len()
                ),
            });
        }
        let row: Result<Vec<Value>> = cells
            .iter()
            .zip(table.schema().columns().iter().map(|c| c.data_type))
            .map(|(cell, dt)| parse_cell(cell, dt))
            .collect();
        table.push_row(row?)?;
    }
    Ok(table)
}

/// Infer the narrowest [`DataType`] that parses every non-empty cell.
/// Empty cells are NULLs and constrain nothing; an all-empty column
/// defaults to `Float` (any representation can hold only-NULLs). The
/// ladder is `Int` → `Bool` → `Float` → `Location` → `Str`, so e.g. a
/// `0/1` column reads as integers and mixed `1`/`2.5` as floats.
/// Timestamps are indistinguishable from integers in plain CSV; callers
/// wanting timestamp semantics supply an explicit schema to
/// [`read_csv`].
pub fn infer_type<'a>(cells: impl IntoIterator<Item = &'a str>) -> DataType {
    let mut seen = false;
    let mut candidates = [
        (DataType::Int, true),
        (DataType::Bool, true),
        (DataType::Float, true),
        (DataType::Location, true),
    ];
    for cell in cells {
        let cell = cell.trim();
        if cell.is_empty() {
            continue;
        }
        seen = true;
        for (dt, ok) in candidates.iter_mut() {
            if *ok && parse_cell(cell, *dt).is_err() {
                *ok = false;
            }
        }
    }
    if !seen {
        return DataType::Float;
    }
    candidates
        .into_iter()
        .find_map(|(dt, ok)| ok.then_some(dt))
        .unwrap_or(DataType::Str)
}

/// Read CSV whose **first non-empty line is a header** of column names,
/// inferring each column's type from the data ([`infer_type`]) — the
/// schema-inference pass behind external dataset registration. Each row
/// is split exactly once; the split cells feed both inference and the
/// typed parse.
pub fn read_csv_infer<R: BufRead>(name: &str, reader: R) -> Result<Table> {
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    let Some((header, data)) = lines.split_first() else {
        return Err(Error::parse("CSV is empty: expected a header line"));
    };
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    if names.iter().any(|n| n.is_empty()) {
        return Err(Error::parse("CSV header has an empty column name"));
    }
    let rows: Vec<Vec<&str>> = data.iter().map(|row| row.split(',').collect()).collect();
    for (lineno, cells) in rows.iter().enumerate() {
        if cells.len() != names.len() {
            return Err(Error::Parse {
                // +2: 1-based, counting the header line
                position: Some(lineno + 2),
                message: format!("expected {} cells, found {}", names.len(), cells.len()),
            });
        }
    }
    let columns: Vec<Column> = names
        .iter()
        .enumerate()
        .map(|(i, name)| Column::new(*name, infer_type(rows.iter().map(|cells| cells[i]))))
        .collect();
    // headers come from untrusted input (the load_csv server op), so a
    // duplicate column name must surface as an error, never a panic
    let mut table = Table::new(name, Schema::try_new(columns)?);
    for cells in &rows {
        let row: Result<Vec<Value>> = cells
            .iter()
            .zip(table.schema().columns().iter().map(|c| c.data_type))
            .map(|(cell, dt)| parse_cell(cell, dt))
            .collect();
        table.push_row(row?)?;
    }
    Ok(table)
}

/// Write a table as headerless CSV.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> Result<()> {
    for i in 0..table.len() {
        let row = table.row(i)?;
        let cells: Result<Vec<String>> = row.iter().map(format_cell).collect();
        writeln!(writer, "{}", cells?.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_types::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("t", DataType::Timestamp),
            Column::new("temp", DataType::Float),
            Column::new("loc", DataType::Location),
            Column::new("tag", DataType::Str),
        ])
    }

    #[test]
    fn round_trip() {
        let csv = "0,15.5,48.1;11.6,munich\n3600,,48.2;11.7,berlin\n";
        let t = read_csv("W", schema(), csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1).unwrap()[1], Value::Null);
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), csv);
    }

    #[test]
    fn bad_cell_reports_line() {
        let csv = "0,ok?,48.1;11.6,x\n";
        let err = read_csv("W", schema(), csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("ok?"));
    }

    #[test]
    fn wrong_arity_reports_line_number() {
        let csv = "0,1.0\n";
        let err = read_csv("W", schema(), csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("at 1"));
    }

    #[test]
    fn separator_in_string_rejected_on_export() {
        assert!(format_cell(&Value::from("a,b")).is_err());
    }

    #[test]
    fn bool_cells() {
        assert_eq!(
            parse_cell("true", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(parse_cell("0", DataType::Bool).unwrap(), Value::Bool(false));
        assert!(parse_cell("yep", DataType::Bool).is_err());
    }

    #[test]
    fn schema_inference_picks_the_narrowest_type() {
        assert_eq!(infer_type(["1", "2", ""]), DataType::Int);
        assert_eq!(infer_type(["1", "2.5"]), DataType::Float);
        assert_eq!(infer_type(["true", "0"]), DataType::Bool);
        assert_eq!(infer_type(["1", "0"]), DataType::Int); // ambiguous -> Int
        assert_eq!(infer_type(["48.1;11.6"]), DataType::Location);
        assert_eq!(infer_type(["48.1;11.6", "x"]), DataType::Str);
        assert_eq!(infer_type(["abc", "1"]), DataType::Str);
        assert_eq!(infer_type(["", ""]), DataType::Float); // all NULL
    }

    #[test]
    fn read_with_header_infers_schema() {
        let csv = "t,temp,loc,tag\n0,15.5,48.1;11.6,munich\n3600,,48.2;11.7,berlin\n";
        let t = read_csv_infer("W", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        let s = t.schema();
        assert_eq!(s.column(0).unwrap().data_type, DataType::Int);
        assert_eq!(s.column(1).unwrap().data_type, DataType::Float);
        assert_eq!(s.column(2).unwrap().data_type, DataType::Location);
        assert_eq!(s.column(3).unwrap().data_type, DataType::Str);
        assert!(s.index_of("temp").is_some());
        assert_eq!(t.row(1).unwrap()[1], Value::Null);
        // header-only input yields an empty but queryable table
        let empty = read_csv_infer("E", "a,b\n".as_bytes()).unwrap();
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.schema().len(), 2);
        // no header at all is an error
        assert!(read_csv_infer("E", "".as_bytes()).is_err());
        // ragged data rows are rejected with a position
        assert!(read_csv_infer("E", "a,b\n1\n".as_bytes()).is_err());
        // duplicate header names are an error, not a panic (the header
        // is remote input via the load_csv server op)
        assert!(read_csv_infer("E", "a,a\n1,2\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_lines_skipped() {
        let csv = "\n0,1.0,1;2,x\n\n";
        let t = read_csv("W", schema(), csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }
}
