//! Horizontal partitioning of the base relation.
//!
//! A [`Partitioning`] is a *view*: it never copies data, it only names
//! contiguous row ranges of a table. Each range slices every column's
//! native buffer (and validity mask) via
//! [`ColumnData::numeric_slice_at`](crate::column::ColumnData::numeric_slice_at),
//! so a per-partition pipeline pass works on exactly the bytes a real
//! shard would own — which is what makes single-box partitioned
//! execution the rehearsal for multi-box sharding: moving a partition to
//! another machine changes where the range lives, not how the pipeline
//! walks it.

/// One contiguous horizontal partition: a row offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// First row of the partition.
    pub offset: usize,
    /// Number of rows.
    pub len: usize,
}

/// A division of `rows` table rows into contiguous partitions covering
/// every row exactly once, in row order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    rows: usize,
    parts: Vec<Partition>,
}

impl Partitioning {
    /// Split `rows` rows into `parts.max(1)` contiguous partitions whose
    /// sizes differ by at most one (the first `rows % parts` partitions
    /// take the extra row). More partitions than rows yields trailing
    /// empty partitions — harmless, and exactly what a fixed shard count
    /// over a small relation looks like.
    pub fn even(rows: usize, parts: usize) -> Partitioning {
        let parts = parts.max(1);
        let base = rows / parts;
        let extra = rows % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut offset = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            ranges.push(Partition { offset, len });
            offset += len;
        }
        Partitioning {
            rows,
            parts: ranges,
        }
    }

    /// Total rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of partitions (≥ 1).
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the covered relation is empty (a partitioning always has
    /// at least one — possibly empty — partition).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The partitions, in row order.
    pub fn partitions(&self) -> &[Partition] {
        &self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::NumericSlice;
    use crate::table::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    #[test]
    fn even_partitioning_covers_rows_exactly_once() {
        for (rows, parts) in [(10, 3), (10, 1), (3, 7), (0, 4), (16, 16), (1000, 7)] {
            let p = Partitioning::even(rows, parts);
            assert_eq!(p.len(), parts.max(1));
            assert_eq!(p.rows(), rows);
            let mut next = 0;
            for part in p.partitions() {
                assert_eq!(part.offset, next, "{rows} rows / {parts} parts");
                next += part.len;
            }
            assert_eq!(next, rows);
            // sizes differ by at most one
            let lens: Vec<usize> = p.partitions().iter().map(|r| r.len).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn zero_parts_degrades_to_one() {
        let p = Partitioning::even(5, 0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.partitions()[0], Partition { offset: 0, len: 5 });
    }

    #[test]
    fn partitions_slice_native_buffers_and_masks() {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..10 {
            let v = if i == 4 {
                Value::Null
            } else {
                Value::Float(i as f64)
            };
            b = b.row(vec![v]).unwrap();
        }
        let t = b.build();
        let col = t.column_by_name("x").unwrap();
        let p = t.partitions(3); // 4 + 3 + 3
        assert_eq!(p.len(), 3);
        let part = p.partitions()[1];
        match col.numeric_slice_at(part.offset, part.len) {
            Some((NumericSlice::F64(xs), Some(mask))) => {
                assert_eq!(xs, &[0.0, 5.0, 6.0]); // NULL slot holds the default
                assert_eq!(mask, &[false, true, true]);
            }
            other => panic!("unexpected view {other:?}"),
        }
        // an all-valid column has no mask to slice
        let mut b = TableBuilder::new("U", vec![Column::new("n", DataType::Int)]);
        for i in 0..6 {
            b = b.row(vec![Value::Int(i)]).unwrap();
        }
        let u = b.build();
        let col = u.column_by_name("n").unwrap();
        match col.numeric_slice_at(2, 2) {
            Some((NumericSlice::I64(xs), None)) => assert_eq!(xs, &[2, 3]),
            other => panic!("unexpected view {other:?}"),
        }
    }
}
