//! Tables: schema + columns + row accessors.

use visdb_types::{Column, ColumnId, Error, Result, Schema, Value};

use crate::column::ColumnData;
use crate::stats::ColumnStats;

/// A materialised row (only built off the hot path: selected-tuple display,
/// CSV export, tests).
pub type Row = Vec<Value>;

/// An in-memory table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    rows: usize,
}

impl Table {
    /// Create an empty table for a schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.data_type))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column by position.
    pub fn column(&self, id: ColumnId) -> Result<&ColumnData> {
        self.columns.get(id).ok_or_else(|| Error::UnknownColumn {
            table: self.name.clone(),
            column: format!("#{id}"),
        })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnData> {
        let id = self.schema.require(&self.name, name)?;
        self.column(id)
    }

    /// Append one row. The row must match the schema arity and the value
    /// types must be column-compatible. On a mid-row type error the row is
    /// rolled back so the table never holds ragged columns.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (i, v) in row.into_iter().enumerate() {
            if let Err(e) = self.columns[i].push(v) {
                // roll back the partial row
                let truncated: Vec<usize> = (0..self.rows).collect();
                for c in self.columns.iter_mut().take(i) {
                    *c = c.gather(&truncated);
                }
                return Err(e);
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Append a batch of rows atomically: either every row lands or the
    /// table is left exactly as it was. The happy path is O(Δ) column
    /// pushes; only a mid-batch arity/type error pays an O(n) rollback
    /// gather.
    pub fn append_rows(&mut self, rows: Vec<Row>) -> Result<()> {
        let before = self.rows;
        for row in rows {
            if let Err(e) = self.push_row(row) {
                let truncated: Vec<usize> = (0..before).collect();
                for c in self.columns.iter_mut() {
                    *c = c.gather(&truncated);
                }
                self.rows = before;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Materialise row `i`.
    pub fn row(&self, i: usize) -> Result<Row> {
        if i >= self.rows {
            return Err(Error::RowOutOfBounds {
                row: i,
                len: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Compute statistics for a column (O(n); results are cheap to cache at
    /// the session layer).
    pub fn stats(&self, id: ColumnId) -> Result<ColumnStats> {
        Ok(ColumnStats::compute(self.column(id)?))
    }

    /// Divide this table's rows into `parts` contiguous horizontal
    /// partitions of near-equal size (a zero-copy view; see
    /// [`crate::partition::Partitioning`]).
    pub fn partitions(&self, parts: usize) -> crate::partition::Partitioning {
        crate::partition::Partitioning::even(self.rows, parts)
    }

    /// Build a new table containing only `indices` (in order). Used for
    /// color-range projection (§4.3: "to get only those data items
    /// displayed that have the selected color").
    pub fn gather(&self, name: impl Into<String>, indices: &[usize]) -> Table {
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table {
            name: name.into(),
            schema: self.schema.clone(),
            columns,
            rows: indices.len(),
        }
    }

    /// Cross product with another table, producing the combined schema via
    /// [`Schema::join`]. The row count is `self.len() * other.len()` —
    /// callers (approximate joins, §4.4) are expected to bound inputs.
    pub fn cross_product(&self, other: &Table, name: impl Into<String>) -> Table {
        let schema = self.schema.join(other.schema(), other.name());
        let n = self.rows;
        let m = other.rows;
        let mut left_idx = Vec::with_capacity(n * m);
        let mut right_idx = Vec::with_capacity(n * m);
        for i in 0..n {
            for j in 0..m {
                left_idx.push(i);
                right_idx.push(j);
            }
        }
        let mut columns: Vec<ColumnData> =
            self.columns.iter().map(|c| c.gather(&left_idx)).collect();
        columns.extend(other.columns.iter().map(|c| c.gather(&right_idx)));
        Table {
            name: name.into(),
            schema,
            columns,
            rows: n * m,
        }
    }
}

/// Convenience builder for assembling tables in examples and tests.
#[derive(Debug)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Start a table with the given columns.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableBuilder {
            table: Table::new(name, Schema::new(columns)),
        }
    }

    /// Append a row of values convertible to [`Value`].
    pub fn row(mut self, values: Vec<Value>) -> Result<Self> {
        self.table.push_row(values)?;
        Ok(self)
    }

    /// Finish building.
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_types::DataType;

    fn small_table() -> Table {
        TableBuilder::new(
            "T",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ],
        )
        .row(vec![Value::Int(1), Value::from("x")])
        .unwrap()
        .row(vec![Value::Int(2), Value::from("y")])
        .unwrap()
        .build()
    }

    #[test]
    fn push_and_read_rows() {
        let t = small_table();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1).unwrap(), vec![Value::Int(2), Value::from("y")]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = small_table();
        assert!(matches!(
            t.push_row(vec![Value::Int(1)]),
            Err(Error::ArityMismatch { .. })
        ));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn type_error_rolls_back_partial_row() {
        let mut t = small_table();
        let err = t.push_row(vec![Value::Int(3), Value::Int(4)]);
        assert!(err.is_err());
        assert_eq!(t.len(), 2);
        // column 'a' must not have grown
        assert_eq!(t.column_by_name("a").unwrap().len(), 2);
    }

    #[test]
    fn append_rows_is_atomic() {
        let mut t = small_table();
        t.append_rows(vec![
            vec![Value::Int(3), Value::from("z")],
            vec![Value::Int(4), Value::Null],
        ])
        .unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.row(3).unwrap(), vec![Value::Int(4), Value::Null]);
        // a bad row anywhere in the batch rolls the whole batch back
        let err = t.append_rows(vec![
            vec![Value::Int(5), Value::from("ok")],
            vec![Value::from("bad"), Value::from("row")],
        ]);
        assert!(err.is_err());
        assert_eq!(t.len(), 4);
        assert_eq!(t.column_by_name("a").unwrap().len(), 4);
        assert_eq!(t.row(3).unwrap(), vec![Value::Int(4), Value::Null]);
    }

    #[test]
    fn gather_projects_rows() {
        let t = small_table();
        let g = t.gather("G", &[1]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.row(0).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn cross_product_shapes() {
        let t = small_table();
        let u = TableBuilder::new("U", vec![Column::new("a", DataType::Int)])
            .row(vec![Value::Int(10)])
            .unwrap()
            .row(vec![Value::Int(20)])
            .unwrap()
            .row(vec![Value::Int(30)])
            .unwrap()
            .build();
        let x = t.cross_product(&u, "TxU");
        assert_eq!(x.len(), 6);
        assert_eq!(x.schema().len(), 3);
        // collision 'a' got prefixed
        assert!(x.schema().index_of("U.a").is_some());
        let r = x.row(1).unwrap();
        assert_eq!(r[0], Value::Int(1)); // t row 0
        assert_eq!(r[2], Value::Int(20)); // u row 1
    }

    #[test]
    fn column_lookup_errors_name_the_table() {
        let t = small_table();
        let e = t.column_by_name("zzz").unwrap_err();
        assert!(e.to_string().contains('T'));
    }
}
