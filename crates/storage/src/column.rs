//! Typed column vectors.
//!
//! Each column is stored natively (`Vec<f64>`, `Vec<i64>`, ...) with a
//! parallel validity mask for NULLs. Distance evaluation iterates columns
//! directly — the O(n) distance pass and the O(n log n) sort dominate the
//! pipeline (§3: "query processing time is dominated by the time needed
//! for sorting"), so per-value enum boxing on the hot path is avoided.

use visdb_types::{DataType, Error, Location, Result, Timestamp, Value};

/// Validity mask: `None` means "all valid" (the common case, saving a
/// Vec<bool> per fully-populated column).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Validity {
    mask: Option<Vec<bool>>,
}

impl Validity {
    /// All-valid mask.
    pub fn all_valid() -> Self {
        Validity { mask: None }
    }

    /// Is row `i` valid? Out-of-range rows report invalid.
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.mask {
            None => true,
            Some(m) => m.get(i).copied().unwrap_or(false),
        }
    }

    /// Record validity for the next pushed row.
    fn push(&mut self, valid: bool, len_before: usize) {
        match (&mut self.mask, valid) {
            (None, true) => {}
            (None, false) => {
                let mut m = vec![true; len_before];
                m.push(false);
                self.mask = Some(m);
            }
            (Some(m), v) => m.push(v),
        }
    }

    /// Number of invalid rows.
    pub fn null_count(&self) -> usize {
        self.mask
            .as_ref()
            .map_or(0, |m| m.iter().filter(|v| !**v).count())
    }

    /// The raw validity bitmap: `None` means every row is valid. Borrowed
    /// by the vectorized distance kernels so NULL handling stays a slice
    /// lookup instead of a per-row method call.
    pub fn mask(&self) -> Option<&[bool]> {
        self.mask.as_deref()
    }
}

/// A borrowed view of a numeric column's native buffer, handed to the
/// vectorized distance kernels (`visdb_distance::batch`). Keeping the
/// native element type visible lets the kernels monomorphize per type
/// instead of dispatching on [`Value`] per tuple.
#[derive(Debug, Clone, Copy)]
pub enum NumericSlice<'a> {
    /// A float column's buffer.
    F64(&'a [f64]),
    /// An integer or timestamp column's buffer.
    I64(&'a [i64]),
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>, Validity),
    /// 64-bit floats.
    Float(Vec<f64>, Validity),
    /// Booleans.
    Bool(Vec<bool>, Validity),
    /// UTF-8 strings.
    Str(Vec<String>, Validity),
    /// Epoch timestamps.
    Timestamp(Vec<Timestamp>, Validity),
    /// Geographic coordinates.
    Location(Vec<Location>, Validity),
}

impl ColumnData {
    /// Empty column of the given type. `Unknown` maps to a float column
    /// (it can only ever hold NULLs, which any representation can).
    pub fn new(dt: DataType) -> Self {
        match dt {
            DataType::Int => ColumnData::Int(Vec::new(), Validity::all_valid()),
            DataType::Float | DataType::Unknown => {
                ColumnData::Float(Vec::new(), Validity::all_valid())
            }
            DataType::Bool => ColumnData::Bool(Vec::new(), Validity::all_valid()),
            DataType::Str => ColumnData::Str(Vec::new(), Validity::all_valid()),
            DataType::Timestamp => ColumnData::Timestamp(Vec::new(), Validity::all_valid()),
            DataType::Location => ColumnData::Location(Vec::new(), Validity::all_valid()),
        }
    }

    /// Empty column with pre-reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Self {
        let mut c = ColumnData::new(dt);
        match &mut c {
            ColumnData::Int(v, _) => v.reserve(cap),
            ColumnData::Float(v, _) => v.reserve(cap),
            ColumnData::Bool(v, _) => v.reserve(cap),
            ColumnData::Str(v, _) => v.reserve(cap),
            ColumnData::Timestamp(v, _) => v.reserve(cap),
            ColumnData::Location(v, _) => v.reserve(cap),
        }
        c
    }

    /// The column's physical type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(..) => DataType::Int,
            ColumnData::Float(..) => DataType::Float,
            ColumnData::Bool(..) => DataType::Bool,
            ColumnData::Str(..) => DataType::Str,
            ColumnData::Timestamp(..) => DataType::Timestamp,
            ColumnData::Location(..) => DataType::Location,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v, _) => v.len(),
            ColumnData::Float(v, _) => v.len(),
            ColumnData::Bool(v, _) => v.len(),
            ColumnData::Str(v, _) => v.len(),
            ColumnData::Timestamp(v, _) => v.len(),
            ColumnData::Location(v, _) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity().null_count()
    }

    fn validity(&self) -> &Validity {
        match self {
            ColumnData::Int(_, v)
            | ColumnData::Bool(_, v)
            | ColumnData::Str(_, v)
            | ColumnData::Timestamp(_, v)
            | ColumnData::Location(_, v)
            | ColumnData::Float(_, v) => v,
        }
    }

    /// Append a [`Value`]. `Null` is accepted by every column; otherwise
    /// the value's type must be compatible with the column's type
    /// (numeric widening `Int -> Float` and `Int <-> Timestamp` allowed).
    pub fn push(&mut self, value: Value) -> Result<()> {
        let len = self.len();
        macro_rules! push_typed {
            ($vec:expr, $val:expr, $validity:expr, $default:expr) => {{
                match $val {
                    Some(x) => {
                        $vec.push(x);
                        $validity.push(true, len);
                    }
                    None => {
                        $vec.push($default);
                        $validity.push(false, len);
                    }
                }
                Ok(())
            }};
        }
        let mismatch = |found: &Value, expected: DataType| Error::TypeMismatch {
            expected: expected.to_string(),
            found: found.data_type().to_string(),
        };
        match self {
            ColumnData::Int(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<i64>, validity, 0),
                Value::Int(x) => push_typed!(vec, Some(x), validity, 0),
                v => Err(mismatch(&v, DataType::Int)),
            },
            ColumnData::Float(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<f64>, validity, 0.0),
                Value::Float(x) => push_typed!(vec, Some(x), validity, 0.0),
                Value::Int(x) => push_typed!(vec, Some(x as f64), validity, 0.0),
                v => Err(mismatch(&v, DataType::Float)),
            },
            ColumnData::Bool(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<bool>, validity, false),
                Value::Bool(x) => push_typed!(vec, Some(x), validity, false),
                v => Err(mismatch(&v, DataType::Bool)),
            },
            ColumnData::Str(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<String>, validity, String::new()),
                Value::Str(x) => push_typed!(vec, Some(x), validity, String::new()),
                v => Err(mismatch(&v, DataType::Str)),
            },
            ColumnData::Timestamp(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<Timestamp>, validity, 0),
                Value::Timestamp(x) => push_typed!(vec, Some(x), validity, 0),
                Value::Int(x) => push_typed!(vec, Some(x), validity, 0),
                v => Err(mismatch(&v, DataType::Timestamp)),
            },
            ColumnData::Location(vec, validity) => match value {
                Value::Null => {
                    push_typed!(vec, None::<Location>, validity, Location::new(0.0, 0.0))
                }
                Value::Location(x) => push_typed!(vec, Some(x), validity, Location::new(0.0, 0.0)),
                v => Err(mismatch(&v, DataType::Location)),
            },
        }
    }

    /// Read row `i` as a [`Value`] (`Null` where the validity mask says so).
    pub fn get(&self, i: usize) -> Value {
        if !self.validity().is_valid(i) {
            return Value::Null;
        }
        match self {
            ColumnData::Int(v, _) => v.get(i).map_or(Value::Null, |x| Value::Int(*x)),
            ColumnData::Float(v, _) => v.get(i).map_or(Value::Null, |x| Value::Float(*x)),
            ColumnData::Bool(v, _) => v.get(i).map_or(Value::Null, |x| Value::Bool(*x)),
            ColumnData::Str(v, _) => v.get(i).map_or(Value::Null, |x| Value::Str(x.clone())),
            ColumnData::Timestamp(v, _) => v.get(i).map_or(Value::Null, |x| Value::Timestamp(*x)),
            ColumnData::Location(v, _) => v.get(i).map_or(Value::Null, |x| Value::Location(*x)),
        }
    }

    /// Numeric projection of row `i`: `None` for NULLs and non-numeric
    /// types. Hot-path accessor used by metric distance functions.
    #[inline]
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if !self.validity().is_valid(i) {
            return None;
        }
        match self {
            ColumnData::Int(v, _) => v.get(i).map(|x| *x as f64),
            ColumnData::Float(v, _) => v.get(i).copied(),
            ColumnData::Bool(v, _) => v.get(i).map(|x| f64::from(u8::from(*x))),
            ColumnData::Timestamp(v, _) => v.get(i).map(|x| *x as f64),
            _ => None,
        }
    }

    /// String projection of row `i`.
    #[inline]
    pub fn get_str(&self, i: usize) -> Option<&str> {
        if !self.validity().is_valid(i) {
            return None;
        }
        match self {
            ColumnData::Str(v, _) => v.get(i).map(String::as_str),
            _ => None,
        }
    }

    /// Location projection of row `i`.
    #[inline]
    pub fn get_location(&self, i: usize) -> Option<Location> {
        if !self.validity().is_valid(i) {
            return None;
        }
        match self {
            ColumnData::Location(v, _) => v.get(i).copied(),
            _ => None,
        }
    }

    /// Borrow the native numeric buffer and validity bitmap, when this
    /// column has one. This is the entry point of the columnar fast path:
    /// distance kernels iterate the returned slice directly, with no
    /// per-tuple [`Value`] materialisation. Bool columns are excluded
    /// (they take the generic per-tuple path, preserving the
    /// `false -> 0.0` / `true -> 1.0` projection of [`ColumnData::get_f64`]).
    pub fn numeric_slice(&self) -> Option<(NumericSlice<'_>, Option<&[bool]>)> {
        match self {
            ColumnData::Float(v, m) => Some((NumericSlice::F64(v), m.mask())),
            ColumnData::Int(v, m) | ColumnData::Timestamp(v, m) => {
                Some((NumericSlice::I64(v), m.mask()))
            }
            _ => None,
        }
    }

    /// [`ColumnData::numeric_slice`] restricted to one horizontal
    /// partition: the native buffer and validity mask of rows
    /// `offset..offset + len`. This is how a
    /// [`Partitioning`](crate::partition::Partitioning) view turns into
    /// per-partition kernel inputs without copying anything.
    pub fn numeric_slice_at(
        &self,
        offset: usize,
        len: usize,
    ) -> Option<(NumericSlice<'_>, Option<&[bool]>)> {
        let (slice, mask) = self.numeric_slice()?;
        let end = offset + len;
        let slice = match slice {
            NumericSlice::F64(xs) => NumericSlice::F64(&xs[offset..end]),
            NumericSlice::I64(xs) => NumericSlice::I64(&xs[offset..end]),
        };
        Some((slice, mask.map(|m| &m[offset..end])))
    }

    /// Gather rows by index into a new column (used to materialise query
    /// results and cross-product slices).
    pub fn gather(&self, indices: &[usize]) -> ColumnData {
        let mut out = ColumnData::with_capacity(self.data_type(), indices.len());
        for &i in indices {
            // gather of an out-of-range index yields NULL rather than a
            // panic: callers construct indices from row counts they own.
            let v = if i < self.len() {
                self.get(i)
            } else {
                Value::Null
            };
            out.push(v).expect("gather preserves column type");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut c = ColumnData::new(DataType::Float);
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Float(2.0));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = ColumnData::new(DataType::Int);
        assert!(c.push(Value::from("x")).is_err());
        // Float into Int is NOT allowed (lossy); Int into Float is.
        assert!(c.push(Value::Float(1.0)).is_err());
        let mut f = ColumnData::new(DataType::Float);
        assert!(f.push(Value::Int(1)).is_ok());
    }

    #[test]
    fn get_f64_respects_nulls() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(7)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.get_f64(0), Some(7.0));
        assert_eq!(c.get_f64(1), None);
        assert_eq!(c.get_f64(99), None);
    }

    #[test]
    fn validity_lazy_materialisation() {
        let mut c = ColumnData::new(DataType::Int);
        for i in 0..10 {
            c.push(Value::Int(i)).unwrap();
        }
        assert_eq!(c.null_count(), 0);
        c.push(Value::Null).unwrap();
        assert_eq!(c.null_count(), 1);
        // earlier rows still valid after mask materialisation
        assert!(c.get_f64(5).is_some());
    }

    #[test]
    fn gather_reorders_and_nullifies_out_of_range() {
        let mut c = ColumnData::new(DataType::Str);
        c.push(Value::from("a")).unwrap();
        c.push(Value::from("b")).unwrap();
        let g = c.gather(&[1, 0, 5]);
        assert_eq!(g.get(0), Value::from("b"));
        assert_eq!(g.get(1), Value::from("a"));
        assert_eq!(g.get(2), Value::Null);
    }

    #[test]
    fn numeric_slice_exposes_native_buffers() {
        let mut f = ColumnData::new(DataType::Float);
        f.push(Value::Float(1.5)).unwrap();
        f.push(Value::Null).unwrap();
        match f.numeric_slice() {
            Some((NumericSlice::F64(xs), Some(mask))) => {
                assert_eq!(xs, &[1.5, 0.0]);
                assert_eq!(mask, &[true, false]);
            }
            other => panic!("unexpected view {other:?}"),
        }
        let mut i = ColumnData::new(DataType::Int);
        i.push(Value::Int(7)).unwrap();
        match i.numeric_slice() {
            Some((NumericSlice::I64(xs), None)) => assert_eq!(xs, &[7]),
            other => panic!("unexpected view {other:?}"),
        }
        let mut t = ColumnData::new(DataType::Timestamp);
        t.push(Value::Timestamp(3600)).unwrap();
        assert!(matches!(
            t.numeric_slice(),
            Some((NumericSlice::I64(_), None))
        ));
        // strings, bools and locations take the per-tuple path
        assert!(ColumnData::new(DataType::Str).numeric_slice().is_none());
        assert!(ColumnData::new(DataType::Bool).numeric_slice().is_none());
        assert!(ColumnData::new(DataType::Location)
            .numeric_slice()
            .is_none());
    }

    #[test]
    fn timestamp_column_accepts_ints() {
        let mut c = ColumnData::new(DataType::Timestamp);
        c.push(Value::Int(3600)).unwrap();
        c.push(Value::Timestamp(7200)).unwrap();
        assert_eq!(c.get(0), Value::Timestamp(3600));
        assert_eq!(c.get_f64(1), Some(7200.0));
    }

    #[test]
    fn location_column() {
        let mut c = ColumnData::new(DataType::Location);
        c.push(Value::Location(Location::new(48.0, 11.0))).unwrap();
        assert_eq!(c.get_location(0), Some(Location::new(48.0, 11.0)));
        assert_eq!(c.get_f64(0), None);
    }
}
