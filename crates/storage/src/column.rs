//! Typed column vectors.
//!
//! Each column is stored natively (`Vec<f64>`, `Vec<i64>`, ...) with a
//! parallel validity mask for NULLs. Distance evaluation iterates columns
//! directly — the O(n) distance pass and the O(n log n) sort dominate the
//! pipeline (§3: "query processing time is dominated by the time needed
//! for sorting"), so per-value enum boxing on the hot path is avoided.

use std::collections::HashMap;
use std::sync::OnceLock;
use visdb_types::{DataType, Error, Location, Result, Timestamp, Value};

/// Validity mask: `None` means "all valid" (the common case, saving a
/// Vec<bool> per fully-populated column).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Validity {
    mask: Option<Vec<bool>>,
}

impl Validity {
    /// All-valid mask.
    pub fn all_valid() -> Self {
        Validity { mask: None }
    }

    /// Is row `i` valid? Out-of-range rows report invalid.
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.mask {
            None => true,
            Some(m) => m.get(i).copied().unwrap_or(false),
        }
    }

    /// Record validity for the next pushed row.
    fn push(&mut self, valid: bool, len_before: usize) {
        match (&mut self.mask, valid) {
            (None, true) => {}
            (None, false) => {
                let mut m = vec![true; len_before];
                m.push(false);
                self.mask = Some(m);
            }
            (Some(m), v) => m.push(v),
        }
    }

    /// Number of invalid rows.
    pub fn null_count(&self) -> usize {
        self.mask
            .as_ref()
            .map_or(0, |m| m.iter().filter(|v| !**v).count())
    }

    /// The raw validity bitmap: `None` means every row is valid. Borrowed
    /// by the vectorized distance kernels so NULL handling stays a slice
    /// lookup instead of a per-row method call.
    pub fn mask(&self) -> Option<&[bool]> {
        self.mask.as_deref()
    }
}

/// A borrowed view of a numeric column's native buffer, handed to the
/// vectorized distance kernels (`visdb_distance::batch`). Keeping the
/// native element type visible lets the kernels monomorphize per type
/// instead of dispatching on [`Value`] per tuple.
#[derive(Debug, Clone, Copy)]
pub enum NumericSlice<'a> {
    /// A float column's buffer.
    F64(&'a [f64]),
    /// An integer or timestamp column's buffer.
    I64(&'a [i64]),
}

/// A packed string column: one concatenated UTF-8 buffer plus an
/// `n + 1`-entry offset vector, so row `i` is `bytes[offsets[i]..offsets[i+1]]`.
/// This replaces the former `Vec<String>` layout — no per-row heap
/// allocation, no pointer chase per access, and the batch string kernels
/// (`visdb_distance::string`) can walk `bytes`/`offsets` directly.
///
/// A dictionary encoding ([`StrDict`]) is built lazily on first use and
/// cached. A push *extends* a small cached dictionary in place (the
/// append path re-derives the one new code instead of recomputing every
/// first-occurrence id); pushes onto a large cached dictionary drop the
/// cache for a lazy O(total bytes) rebuild.
#[derive(Debug)]
pub struct StrColumn {
    bytes: Vec<u8>,
    offsets: Vec<u32>,
    dict: OnceLock<StrDict>,
}

/// Largest cached dictionary a push will extend in place. The in-place
/// extension scans `values` linearly per push (the cached dict keeps no
/// hash map), so past this cardinality dropping the cache and lazily
/// rebuilding is cheaper than O(unique) per appended row.
const MAX_INLINE_DICT: usize = 1024;

/// Dictionary encoding of a [`StrColumn`]: `codes[i]` indexes into
/// `values`, the distinct strings in first-occurrence order. NULL rows
/// carry the code of their empty-string placeholder — callers must mask
/// by the column's validity, exactly as they do for numeric buffers.
#[derive(Debug, Clone)]
pub struct StrDict {
    codes: Vec<u32>,
    values: Vec<String>,
}

impl StrDict {
    /// Per-row dictionary codes (length = column length).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Distinct values in first-occurrence order; `codes()` indexes here.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of distinct values.
    pub fn unique_len(&self) -> usize {
        self.values.len()
    }
}

impl StrColumn {
    /// Empty column.
    pub fn new() -> Self {
        StrColumn {
            bytes: Vec::new(),
            offsets: vec![0],
            dict: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-reserve for `cap` additional rows (offsets only; byte totals
    /// are unknowable up front).
    pub fn reserve(&mut self, cap: usize) {
        self.offsets.reserve(cap);
    }

    /// Append a row. A small cached dictionary is extended in place —
    /// an existing value reuses its code, a new value mints the next one
    /// (first-occurrence order is preserved because a genuinely new
    /// value is, by construction, first seen at the appended row). A
    /// large cached dictionary is dropped for a lazy rebuild instead.
    /// Either way the state is identical to rebuilding from scratch.
    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        let end = u32::try_from(self.bytes.len()).expect("string column exceeds u32 byte offsets");
        self.offsets.push(end);
        if let Some(mut dict) = self.dict.take() {
            if dict.values.len() <= MAX_INLINE_DICT {
                let code = dict.values.iter().position(|v| v == s).unwrap_or_else(|| {
                    dict.values.push(s.to_owned());
                    dict.values.len() - 1
                });
                dict.codes.push(code as u32);
                let _ = self.dict.set(dict);
            }
        }
    }

    /// Row `i` as a `&str`; `None` out of range. NULL rows read as their
    /// empty-string placeholder — callers consult the validity mask.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&str> {
        if i >= self.len() {
            return None;
        }
        let (a, b) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        // Safety of the expect: bytes only ever come from `&str` pushes.
        Some(std::str::from_utf8(&self.bytes[a..b]).expect("column bytes are valid UTF-8"))
    }

    /// The concatenated UTF-8 buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The `n + 1` row byte offsets into [`StrColumn::bytes`].
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The dictionary encoding, built on first call and cached until the
    /// next push. O(total bytes) to build, then free.
    pub fn dict(&self) -> &StrDict {
        self.dict.get_or_init(|| {
            let n = self.len();
            let mut map: HashMap<&[u8], u32> = HashMap::new();
            let mut codes = Vec::with_capacity(n);
            let mut values: Vec<String> = Vec::new();
            for i in 0..n {
                let (a, b) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
                let raw = &self.bytes[a..b];
                let code = *map.entry(raw).or_insert_with(|| {
                    let c = values.len() as u32;
                    values.push(String::from_utf8_lossy(raw).into_owned());
                    c
                });
                codes.push(code);
            }
            StrDict { codes, values }
        })
    }
}

impl Default for StrColumn {
    fn default() -> Self {
        StrColumn::new()
    }
}

impl Clone for StrColumn {
    fn clone(&self) -> Self {
        // The dict cache is pure derived data; drop it rather than clone.
        StrColumn {
            bytes: self.bytes.clone(),
            offsets: self.offsets.clone(),
            dict: OnceLock::new(),
        }
    }
}

impl PartialEq for StrColumn {
    fn eq(&self, other: &Self) -> bool {
        // The lazily built dict is derived data — identity is the layout.
        self.bytes == other.bytes && self.offsets == other.offsets
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>, Validity),
    /// 64-bit floats.
    Float(Vec<f64>, Validity),
    /// Booleans.
    Bool(Vec<bool>, Validity),
    /// UTF-8 strings in a packed offset+bytes layout.
    Str(StrColumn, Validity),
    /// Epoch timestamps.
    Timestamp(Vec<Timestamp>, Validity),
    /// Geographic coordinates.
    Location(Vec<Location>, Validity),
}

impl ColumnData {
    /// Empty column of the given type. `Unknown` maps to a float column
    /// (it can only ever hold NULLs, which any representation can).
    pub fn new(dt: DataType) -> Self {
        match dt {
            DataType::Int => ColumnData::Int(Vec::new(), Validity::all_valid()),
            DataType::Float | DataType::Unknown => {
                ColumnData::Float(Vec::new(), Validity::all_valid())
            }
            DataType::Bool => ColumnData::Bool(Vec::new(), Validity::all_valid()),
            DataType::Str => ColumnData::Str(StrColumn::new(), Validity::all_valid()),
            DataType::Timestamp => ColumnData::Timestamp(Vec::new(), Validity::all_valid()),
            DataType::Location => ColumnData::Location(Vec::new(), Validity::all_valid()),
        }
    }

    /// Empty column with pre-reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Self {
        let mut c = ColumnData::new(dt);
        match &mut c {
            ColumnData::Int(v, _) => v.reserve(cap),
            ColumnData::Float(v, _) => v.reserve(cap),
            ColumnData::Bool(v, _) => v.reserve(cap),
            ColumnData::Str(v, _) => v.reserve(cap),
            ColumnData::Timestamp(v, _) => v.reserve(cap),
            ColumnData::Location(v, _) => v.reserve(cap),
        }
        c
    }

    /// The column's physical type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(..) => DataType::Int,
            ColumnData::Float(..) => DataType::Float,
            ColumnData::Bool(..) => DataType::Bool,
            ColumnData::Str(..) => DataType::Str,
            ColumnData::Timestamp(..) => DataType::Timestamp,
            ColumnData::Location(..) => DataType::Location,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v, _) => v.len(),
            ColumnData::Float(v, _) => v.len(),
            ColumnData::Bool(v, _) => v.len(),
            ColumnData::Str(v, _) => v.len(),
            ColumnData::Timestamp(v, _) => v.len(),
            ColumnData::Location(v, _) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity().null_count()
    }

    fn validity(&self) -> &Validity {
        match self {
            ColumnData::Int(_, v)
            | ColumnData::Bool(_, v)
            | ColumnData::Str(_, v)
            | ColumnData::Timestamp(_, v)
            | ColumnData::Location(_, v)
            | ColumnData::Float(_, v) => v,
        }
    }

    /// Append a [`Value`]. `Null` is accepted by every column; otherwise
    /// the value's type must be compatible with the column's type
    /// (numeric widening `Int -> Float` and `Int <-> Timestamp` allowed).
    pub fn push(&mut self, value: Value) -> Result<()> {
        let len = self.len();
        macro_rules! push_typed {
            ($vec:expr, $val:expr, $validity:expr, $default:expr) => {{
                match $val {
                    Some(x) => {
                        $vec.push(x);
                        $validity.push(true, len);
                    }
                    None => {
                        $vec.push($default);
                        $validity.push(false, len);
                    }
                }
                Ok(())
            }};
        }
        let mismatch = |found: &Value, expected: DataType| Error::TypeMismatch {
            expected: expected.to_string(),
            found: found.data_type().to_string(),
        };
        match self {
            ColumnData::Int(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<i64>, validity, 0),
                Value::Int(x) => push_typed!(vec, Some(x), validity, 0),
                v => Err(mismatch(&v, DataType::Int)),
            },
            ColumnData::Float(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<f64>, validity, 0.0),
                Value::Float(x) => push_typed!(vec, Some(x), validity, 0.0),
                Value::Int(x) => push_typed!(vec, Some(x as f64), validity, 0.0),
                v => Err(mismatch(&v, DataType::Float)),
            },
            ColumnData::Bool(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<bool>, validity, false),
                Value::Bool(x) => push_typed!(vec, Some(x), validity, false),
                v => Err(mismatch(&v, DataType::Bool)),
            },
            ColumnData::Str(vec, validity) => match value {
                Value::Null => {
                    vec.push("");
                    validity.push(false, len);
                    Ok(())
                }
                Value::Str(x) => {
                    vec.push(&x);
                    validity.push(true, len);
                    Ok(())
                }
                v => Err(mismatch(&v, DataType::Str)),
            },
            ColumnData::Timestamp(vec, validity) => match value {
                Value::Null => push_typed!(vec, None::<Timestamp>, validity, 0),
                Value::Timestamp(x) => push_typed!(vec, Some(x), validity, 0),
                Value::Int(x) => push_typed!(vec, Some(x), validity, 0),
                v => Err(mismatch(&v, DataType::Timestamp)),
            },
            ColumnData::Location(vec, validity) => match value {
                Value::Null => {
                    push_typed!(vec, None::<Location>, validity, Location::new(0.0, 0.0))
                }
                Value::Location(x) => push_typed!(vec, Some(x), validity, Location::new(0.0, 0.0)),
                v => Err(mismatch(&v, DataType::Location)),
            },
        }
    }

    /// Read row `i` as a [`Value`] (`Null` where the validity mask says so).
    pub fn get(&self, i: usize) -> Value {
        if !self.validity().is_valid(i) {
            return Value::Null;
        }
        match self {
            ColumnData::Int(v, _) => v.get(i).map_or(Value::Null, |x| Value::Int(*x)),
            ColumnData::Float(v, _) => v.get(i).map_or(Value::Null, |x| Value::Float(*x)),
            ColumnData::Bool(v, _) => v.get(i).map_or(Value::Null, |x| Value::Bool(*x)),
            ColumnData::Str(v, _) => v.get(i).map_or(Value::Null, |x| Value::Str(x.to_owned())),
            ColumnData::Timestamp(v, _) => v.get(i).map_or(Value::Null, |x| Value::Timestamp(*x)),
            ColumnData::Location(v, _) => v.get(i).map_or(Value::Null, |x| Value::Location(*x)),
        }
    }

    /// Numeric projection of row `i`: `None` for NULLs and non-numeric
    /// types. Hot-path accessor used by metric distance functions.
    #[inline]
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if !self.validity().is_valid(i) {
            return None;
        }
        match self {
            ColumnData::Int(v, _) => v.get(i).map(|x| *x as f64),
            ColumnData::Float(v, _) => v.get(i).copied(),
            ColumnData::Bool(v, _) => v.get(i).map(|x| f64::from(u8::from(*x))),
            ColumnData::Timestamp(v, _) => v.get(i).map(|x| *x as f64),
            _ => None,
        }
    }

    /// String projection of row `i`.
    #[inline]
    pub fn get_str(&self, i: usize) -> Option<&str> {
        if !self.validity().is_valid(i) {
            return None;
        }
        match self {
            ColumnData::Str(v, _) => v.get(i),
            _ => None,
        }
    }

    /// Location projection of row `i`.
    #[inline]
    pub fn get_location(&self, i: usize) -> Option<Location> {
        if !self.validity().is_valid(i) {
            return None;
        }
        match self {
            ColumnData::Location(v, _) => v.get(i).copied(),
            _ => None,
        }
    }

    /// Borrow the native numeric buffer and validity bitmap, when this
    /// column has one. This is the entry point of the columnar fast path:
    /// distance kernels iterate the returned slice directly, with no
    /// per-tuple [`Value`] materialisation. Bool columns are excluded
    /// (they take the generic per-tuple path, preserving the
    /// `false -> 0.0` / `true -> 1.0` projection of [`ColumnData::get_f64`]).
    pub fn numeric_slice(&self) -> Option<(NumericSlice<'_>, Option<&[bool]>)> {
        match self {
            ColumnData::Float(v, m) => Some((NumericSlice::F64(v), m.mask())),
            ColumnData::Int(v, m) | ColumnData::Timestamp(v, m) => {
                Some((NumericSlice::I64(v), m.mask()))
            }
            _ => None,
        }
    }

    /// [`ColumnData::numeric_slice`] restricted to one horizontal
    /// partition: the native buffer and validity mask of rows
    /// `offset..offset + len`. This is how a
    /// [`Partitioning`](crate::partition::Partitioning) view turns into
    /// per-partition kernel inputs without copying anything.
    pub fn numeric_slice_at(
        &self,
        offset: usize,
        len: usize,
    ) -> Option<(NumericSlice<'_>, Option<&[bool]>)> {
        let (slice, mask) = self.numeric_slice()?;
        let end = offset + len;
        let slice = match slice {
            NumericSlice::F64(xs) => NumericSlice::F64(&xs[offset..end]),
            NumericSlice::I64(xs) => NumericSlice::I64(&xs[offset..end]),
        };
        Some((slice, mask.map(|m| &m[offset..end])))
    }

    /// Borrow the packed string layout and validity bitmap, when this is
    /// a string column. The string counterpart of
    /// [`ColumnData::numeric_slice`]: batch string kernels and the
    /// dictionary-gather path read `bytes`/`offsets`/`dict` directly, with
    /// no per-tuple [`Value`] materialisation.
    pub fn str_column(&self) -> Option<(&StrColumn, Option<&[bool]>)> {
        match self {
            ColumnData::Str(v, m) => Some((v, m.mask())),
            _ => None,
        }
    }

    /// Gather rows by index into a new column (used to materialise query
    /// results and cross-product slices).
    pub fn gather(&self, indices: &[usize]) -> ColumnData {
        let mut out = ColumnData::with_capacity(self.data_type(), indices.len());
        for &i in indices {
            // gather of an out-of-range index yields NULL rather than a
            // panic: callers construct indices from row counts they own.
            let v = if i < self.len() {
                self.get(i)
            } else {
                Value::Null
            };
            out.push(v).expect("gather preserves column type");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut c = ColumnData::new(DataType::Float);
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Float(2.0));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = ColumnData::new(DataType::Int);
        assert!(c.push(Value::from("x")).is_err());
        // Float into Int is NOT allowed (lossy); Int into Float is.
        assert!(c.push(Value::Float(1.0)).is_err());
        let mut f = ColumnData::new(DataType::Float);
        assert!(f.push(Value::Int(1)).is_ok());
    }

    #[test]
    fn get_f64_respects_nulls() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(7)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.get_f64(0), Some(7.0));
        assert_eq!(c.get_f64(1), None);
        assert_eq!(c.get_f64(99), None);
    }

    #[test]
    fn validity_lazy_materialisation() {
        let mut c = ColumnData::new(DataType::Int);
        for i in 0..10 {
            c.push(Value::Int(i)).unwrap();
        }
        assert_eq!(c.null_count(), 0);
        c.push(Value::Null).unwrap();
        assert_eq!(c.null_count(), 1);
        // earlier rows still valid after mask materialisation
        assert!(c.get_f64(5).is_some());
    }

    #[test]
    fn gather_reorders_and_nullifies_out_of_range() {
        let mut c = ColumnData::new(DataType::Str);
        c.push(Value::from("a")).unwrap();
        c.push(Value::from("b")).unwrap();
        let g = c.gather(&[1, 0, 5]);
        assert_eq!(g.get(0), Value::from("b"));
        assert_eq!(g.get(1), Value::from("a"));
        assert_eq!(g.get(2), Value::Null);
    }

    #[test]
    fn numeric_slice_exposes_native_buffers() {
        let mut f = ColumnData::new(DataType::Float);
        f.push(Value::Float(1.5)).unwrap();
        f.push(Value::Null).unwrap();
        match f.numeric_slice() {
            Some((NumericSlice::F64(xs), Some(mask))) => {
                assert_eq!(xs, &[1.5, 0.0]);
                assert_eq!(mask, &[true, false]);
            }
            other => panic!("unexpected view {other:?}"),
        }
        let mut i = ColumnData::new(DataType::Int);
        i.push(Value::Int(7)).unwrap();
        match i.numeric_slice() {
            Some((NumericSlice::I64(xs), None)) => assert_eq!(xs, &[7]),
            other => panic!("unexpected view {other:?}"),
        }
        let mut t = ColumnData::new(DataType::Timestamp);
        t.push(Value::Timestamp(3600)).unwrap();
        assert!(matches!(
            t.numeric_slice(),
            Some((NumericSlice::I64(_), None))
        ));
        // strings, bools and locations take the per-tuple path
        assert!(ColumnData::new(DataType::Str).numeric_slice().is_none());
        assert!(ColumnData::new(DataType::Bool).numeric_slice().is_none());
        assert!(ColumnData::new(DataType::Location)
            .numeric_slice()
            .is_none());
    }

    #[test]
    fn str_column_packed_layout_and_dict() {
        let mut c = ColumnData::new(DataType::Str);
        for s in ["abc", "", "abc", "日本", "x"] {
            c.push(Value::from(s)).unwrap();
        }
        c.push(Value::Null).unwrap();
        let (sc, mask) = c.str_column().expect("string view");
        assert_eq!(sc.len(), 6);
        assert_eq!(sc.get(0), Some("abc"));
        assert_eq!(sc.get(1), Some(""));
        assert_eq!(sc.get(3), Some("日本"));
        assert_eq!(sc.get(5), Some("")); // NULL placeholder; mask says invalid
        assert_eq!(sc.get(6), None);
        assert_eq!(mask.unwrap(), &[true, true, true, true, true, false]);
        assert_eq!(sc.offsets().len(), 7);
        assert_eq!(sc.bytes().len(), "abc".len() * 2 + "日本".len() + 1);

        let d = sc.dict();
        assert_eq!(d.unique_len(), 4); // abc, "", 日本, x ("" shared with NULL row)
        assert_eq!(d.values(), &["abc", "", "日本", "x"]);
        assert_eq!(d.codes(), &[0, 1, 0, 2, 3, 1]);

        // equality ignores the (cached) dict; clone drops the cache
        let c2 = c.clone();
        assert_eq!(c, c2);
    }

    #[test]
    fn str_column_push_invalidates_dict() {
        let mut sc = StrColumn::new();
        sc.push("a");
        assert_eq!(sc.dict().unique_len(), 1);
        sc.push("b");
        assert_eq!(sc.dict().unique_len(), 2);
        assert_eq!(sc.dict().codes(), &[0, 1]);
    }

    #[test]
    fn str_column_push_extends_cached_dict_identically() {
        let mut sc = StrColumn::new();
        for s in ["a", "b", "a", ""] {
            sc.push(s);
        }
        let _ = sc.dict(); // warm the cache so pushes take the extension path
        for s in ["b", "c", "a", "", "c"] {
            sc.push(s);
        }
        let mut rebuilt = StrColumn::new();
        for i in 0..sc.len() {
            rebuilt.push(sc.get(i).unwrap());
        }
        // `rebuilt` never cached a dict mid-push, so its dict() is the
        // from-scratch first-occurrence scan — the extension must match it.
        assert_eq!(sc.dict().values(), rebuilt.dict().values());
        assert_eq!(sc.dict().codes(), rebuilt.dict().codes());
    }

    #[test]
    fn timestamp_column_accepts_ints() {
        let mut c = ColumnData::new(DataType::Timestamp);
        c.push(Value::Int(3600)).unwrap();
        c.push(Value::Timestamp(7200)).unwrap();
        assert_eq!(c.get(0), Value::Timestamp(3600));
        assert_eq!(c.get_f64(1), Some(7200.0));
    }

    #[test]
    fn location_column() {
        let mut c = ColumnData::new(DataType::Location);
        c.push(Value::Location(Location::new(48.0, 11.0))).unwrap();
        assert_eq!(c.get_location(0), Some(Location::new(48.0, 11.0)));
        assert_eq!(c.get_f64(0), None);
    }
}
