//! Column statistics for the slider UI model.
//!
//! The query modification panel (fig 4/5, §4.3) shows for every attribute
//! the database-wide `min:` and `max:`, and the slider's color spectrum is
//! a histogram-like rendering of the distance distribution. This module
//! computes those per-column summaries in one O(n) pass.

use crate::column::ColumnData;

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Rows scanned.
    pub count: usize,
    /// NULL rows.
    pub nulls: usize,
    /// Minimum numeric value (None for non-numeric or all-NULL columns).
    pub min: Option<f64>,
    /// Maximum numeric value.
    pub max: Option<f64>,
    /// Arithmetic mean of non-NULL numeric values.
    pub mean: Option<f64>,
    /// Population standard deviation of non-NULL numeric values.
    pub std_dev: Option<f64>,
    /// Equi-width histogram over [min, max] (empty for non-numeric).
    pub histogram: Vec<usize>,
}

/// Number of histogram buckets: enough resolution for slider spectra while
/// staying cheap to render.
pub const HISTOGRAM_BUCKETS: usize = 64;

impl ColumnStats {
    /// One-pass (plus one histogram pass) computation.
    pub fn compute(col: &ColumnData) -> ColumnStats {
        let count = col.len();
        let nulls = col.null_count();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut n = 0usize;
        for i in 0..count {
            if let Some(x) = col.get_f64(i) {
                if x.is_nan() {
                    continue;
                }
                min = min.min(x);
                max = max.max(x);
                sum += x;
                sum_sq += x * x;
                n += 1;
            }
        }
        if n == 0 {
            return ColumnStats {
                count,
                nulls,
                min: None,
                max: None,
                mean: None,
                std_dev: None,
                histogram: Vec::new(),
            };
        }
        let mean = sum / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        let mut histogram = vec![0usize; HISTOGRAM_BUCKETS];
        let width = (max - min).max(f64::MIN_POSITIVE);
        for i in 0..count {
            if let Some(x) = col.get_f64(i) {
                if x.is_nan() {
                    continue;
                }
                let b = (((x - min) / width) * HISTOGRAM_BUCKETS as f64) as usize;
                histogram[b.min(HISTOGRAM_BUCKETS - 1)] += 1;
            }
        }
        ColumnStats {
            count,
            nulls,
            min: Some(min),
            max: Some(max),
            mean: Some(mean),
            std_dev: Some(var.sqrt()),
            histogram,
        }
    }

    /// Value range (max - min), 0 for degenerate columns.
    pub fn range(&self) -> f64 {
        match (self.min, self.max) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_types::{DataType, Value};

    fn float_col(values: &[f64]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Float);
        for &v in values {
            c.push(Value::Float(v)).unwrap();
        }
        c
    }

    #[test]
    fn basic_moments() {
        let s = ColumnStats::compute(&float_col(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(4.0));
        assert_eq!(s.mean, Some(2.5));
        assert!((s.std_dev.unwrap() - 1.118033988749895).abs() < 1e-12);
        assert_eq!(s.histogram.iter().sum::<usize>(), 4);
    }

    #[test]
    fn nulls_are_excluded() {
        let mut c = float_col(&[10.0]);
        c.push(Value::Null).unwrap();
        let s = ColumnStats::compute(&c);
        assert_eq!(s.count, 2);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.mean, Some(10.0));
    }

    #[test]
    fn non_numeric_columns_have_no_moments() {
        let mut c = ColumnData::new(DataType::Str);
        c.push(Value::from("a")).unwrap();
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, None);
        assert!(s.histogram.is_empty());
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn nan_values_are_skipped() {
        let s = ColumnStats::compute(&float_col(&[1.0, f64::NAN, 3.0]));
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(3.0));
        assert_eq!(s.mean, Some(2.0));
    }

    #[test]
    fn histogram_extremes_land_in_first_and_last_bucket() {
        let s = ColumnStats::compute(&float_col(&[0.0, 100.0]));
        assert_eq!(s.histogram[0], 1);
        assert_eq!(*s.histogram.last().unwrap(), 1);
    }

    #[test]
    fn constant_column_is_degenerate_but_finite() {
        let s = ColumnStats::compute(&float_col(&[5.0, 5.0, 5.0]));
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.histogram.iter().sum::<usize>(), 3);
        assert_eq!(s.std_dev, Some(0.0));
    }
}
