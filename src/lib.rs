//! # VisDB — Visual Feedback Queries for Data Mining
//!
//! A from-scratch Rust reproduction of **"Supporting Data Mining of Large
//! Databases by Visual Feedback Queries"** (Keim, Kriegel & Seidl,
//! ICDE 1994).
//!
//! VisDB answers a database query with more than the exact result set:
//! every data item gets a **relevance factor** derived from per-predicate,
//! datatype-specific distance functions, and items are rendered as colored
//! pixels — exact answers yellow in the window center, approximate answers
//! spiraling outward through green, blue and red to almost black. One
//! window per selection predicate (position-coherent with the overall
//! result) shows *why* each item scored the way it did, and interactive
//! slider/weight modifications recalculate the picture immediately.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use visdb::prelude::*;
//!
//! // a tiny table
//! let mut db = Database::new("demo");
//! let mut t = TableBuilder::new("Readings", vec![
//!     Column::new("Temperature", DataType::Float),
//! ]);
//! for v in [5.0_f64, 12.0, 16.5, 21.0, 28.0] {
//!     t = t.row(vec![Value::Float(v)]).unwrap();
//! }
//! db.add_table(t.build());
//!
//! // an approximate query: Temperature > 15. The database sits behind an
//! // `Arc` so any number of sessions can share it without copying.
//! let mut session = Session::new(Arc::new(db), ConnectionRegistry::new());
//! session.set_display_policy(DisplayPolicy::Percentage(100.0)).unwrap();
//! session.set_query(
//!     QueryBuilder::from_tables(["Readings"])
//!         .cmp("Temperature", CompareOp::Gt, 15.0)
//!         .build(),
//! ).unwrap();
//!
//! let result = session.result().unwrap();
//! assert_eq!(result.pipeline.num_exact, 3);          // 16.5, 21, 28
//! assert_eq!(result.pipeline.displayed.len(), 5);    // approximate too
//! // the best approximate answer is 12.0 (3 away), then 5.0
//! assert_eq!(result.pipeline.order[3], 1);
//! assert_eq!(result.pipeline.order[4], 0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `visdb-types` | values, datatypes, schemas, errors |
//! | [`storage`] | `visdb-storage` | columnar tables, catalog, stats, CSV |
//! | [`query`] | `visdb-query` | AST, builder, mini-SQL parser, connections |
//! | [`distance`] | `visdb-distance` | numeric/string/matrix/geo/time distances |
//! | [`relevance`] | `visdb-relevance` | quantiles, gap heuristic, normalization, AND/OR combining |
//! | [`arrange`] | `visdb-arrange` | spiral & 2D sign-quadrant arrangements |
//! | [`color`] | `visdb-color` | the VisDB colormap, CIELAB, JND counting |
//! | [`render`] | `visdb-render` | framebuffer, PPM/PGM, layout, spectra |
//! | [`index`] | `visdb-index` | k-d tree, grid file, incremental cache |
//! | [`exec`] | `visdb-exec` | shared budgeted worker pool: scoped fork-join + task queue |
//! | [`obs`] | `visdb-obs` | counters, gauges, latency histograms, metrics registry |
//! | [`core`] | `visdb-core` | sessions, approximate joins, sliders, rendering |
//! | [`data`] | `visdb-data` | synthetic workloads (environmental, CAD, multi-DB) |
//! | [`baseline`] | `visdb-baseline` | exact boolean queries, k-means |
//! | [`service`] | `visdb-service` | concurrent multi-session query service |
//!
//! ## Serving layer
//!
//! The paper's system is single-user. The [`service`] module multiplexes
//! its interaction loop for many concurrent users: sessions share one
//! `Arc<Database>` (zero copies), a budgeted [`exec`] runtime executes
//! requests for distinct sessions in parallel (FIFO within a session)
//! and absorbs the pipeline's chunked row walks on the same threads, a shared
//! query-result cache answers identical queries from different users
//! without re-running the pipeline, and idle sessions are LRU-evicted.
//! The `visdb-server` binary exposes it as newline-delimited JSON over
//! stdin/stdout:
//!
//! ```
//! use std::sync::Arc;
//! use visdb::prelude::*;
//!
//! let mut db = Database::new("demo");
//! let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
//! for i in 0..32 {
//!     t = t.row(vec![Value::Float(i as f64)]).unwrap();
//! }
//! db.add_table(t.build());
//!
//! let service = Service::new(ServiceConfig::default());
//! service.register_dataset("demo", Arc::new(db), ConnectionRegistry::new());
//! let user = service.create_session("demo").unwrap();
//! let reply = service
//!     .submit(user, Request::SetQueryText("SELECT * FROM T WHERE x >= 16".into()))
//!     .unwrap();
//! assert_eq!(reply, Response::Ok);
//! ```

pub use visdb_arrange as arrange;
pub use visdb_baseline as baseline;
pub use visdb_color as color;
pub use visdb_core as core;
pub use visdb_data as data;
pub use visdb_distance as distance;
pub use visdb_exec as exec;
pub use visdb_index as index;
pub use visdb_obs as obs;
pub use visdb_query as query;
pub use visdb_relevance as relevance;
pub use visdb_render as render;
pub use visdb_service as service;
pub use visdb_storage as storage;
pub use visdb_types as types;

/// The commonly-needed names in one import.
pub mod prelude {
    pub use visdb_arrange::{arrange_grouped2d, arrange_overall, ItemGrid, PixelsPerItem};
    pub use visdb_color::{Colormap, ColormapKind, Rgb};
    pub use visdb_core::{
        materialize_base, render_session, JoinOptions, Panel, RenderOptions, Session,
        SessionResult, SliderDrag,
    };
    pub use visdb_data::{
        generate_cad, generate_environmental, generate_geographic, generate_multidb, CadConfig,
        EnvConfig, GeoConfig, MultiDbConfig,
    };
    pub use visdb_distance::{ColumnDistance, DistanceMatrix, DistanceResolver, StringDistance};
    pub use visdb_distance::{DistanceFrame, FrameStats};
    pub use visdb_index::SortedProjection;
    pub use visdb_obs::{Registry, Snapshot};
    pub use visdb_query::{
        parse_query, AttrRef, CompareOp, ConditionNode, ConnectionDef, ConnectionKind,
        ConnectionRegistry, ConnectionUse, Predicate, PredicateTarget, Query, QueryBuilder,
        SubqueryLink, Weighted,
    };
    pub use visdb_relevance::{
        run_pipeline, run_pipeline_opts, run_pipeline_partitioned, run_pipeline_scalar,
        DisplayPolicy, ExecMode, Materialization, PipelineOptions, PipelineOutput, PipelineTrace,
        PredicateWindow,
    };
    pub use visdb_render::{write_ppm, Framebuffer};
    pub use visdb_service::{
        ErrorKind, RenderFormat, Request, Response, Service, ServiceConfig, ServiceTelemetry,
        SessionId, SessionSummary, SubmitOptions, TraceReport,
    };
    pub use visdb_storage::{ColumnStats, Database, Partitioning, Row, Table, TableBuilder};
    pub use visdb_types::{
        Column, DataType, Error, Location, Result, Schema, Timestamp, TypeClass, Value,
    };
}
